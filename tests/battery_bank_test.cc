// Lockstep property tests for battery::BatteryBank.
//
// The bank's contract is bitwise equivalence with the scalar models: a
// fleet of N slots stepped through `advance_all` (or through per-slot
// `Battery` views) must track N independent scalar `Battery` instances
// bit-for-bit — fast paths, mid-step deaths, and post-death stepping
// alike. Every comparison below is EXPECT_EQ on raw doubles, not
// EXPECT_NEAR: any divergence in expression order between bank.cc and
// kibam.cc/rakhmatov.cc shows up here as a hard failure.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "battery/bank.h"
#include "battery/battery.h"
#include "battery/kibam.h"
#include "battery/rakhmatov.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using deslp::battery::Battery;
using deslp::battery::BatteryBank;
using deslp::battery::itsy_kibam_params;
using deslp::battery::itsy_rakhmatov_params;
using deslp::battery::make_kibam_battery;
using deslp::battery::make_rakhmatov_battery;
using deslp::milliamps;
using deslp::seconds;
using deslp::Amps;
using deslp::Seconds;
using deslp::Rng;

enum class Model { kKibam, kRakhmatov };

std::unique_ptr<Battery> make_scalar(Model m) {
  return m == Model::kKibam
             ? make_kibam_battery(itsy_kibam_params())
             : make_rakhmatov_battery(itsy_rakhmatov_params());
}

std::unique_ptr<BatteryBank> make_bank(Model m) {
  return m == Model::kKibam
             ? std::make_unique<BatteryBank>(itsy_kibam_params())
             : std::make_unique<BatteryBank>(itsy_rakhmatov_params());
}

/// Assert one slot agrees with its scalar reference on every observable,
/// bit for bit (doubles compared by value; infinities compare equal).
void expect_slot_matches(const BatteryBank& bank, std::size_t slot,
                         const Battery& ref, Amps probe) {
  EXPECT_EQ(bank.empty(slot), ref.empty());
  EXPECT_EQ(bank.state_of_charge(slot), ref.state_of_charge());
  EXPECT_EQ(bank.nominal_remaining(slot).value(),
            ref.nominal_remaining().value());
  EXPECT_EQ(bank.time_to_empty(slot, probe).value(),
            ref.time_to_empty(probe).value());
  EXPECT_EQ(bank.can_sustain(slot, probe, seconds(40.0)),
            ref.can_sustain(probe, seconds(40.0)));
}

class BankLockstepTest : public ::testing::TestWithParam<Model> {};

// The core property: seeded random load schedules (current spikes, rests,
// long steps — enough cumulative charge to kill several slots mid-run)
// stepped via advance_all track N independent scalar batteries exactly.
TEST_P(BankLockstepTest, AdvanceAllTracksScalarBatteriesBitForBit) {
  const Model model = GetParam();
  constexpr std::size_t kNodes = 24;
  constexpr int kSteps = 400;

  auto bank = make_bank(model);
  std::vector<std::unique_ptr<Battery>> refs;
  for (std::size_t n = 0; n < kNodes; ++n) {
    bank->add_slot();
    refs.push_back(make_scalar(model));
  }

  Rng rng(model == Model::kKibam ? 0xB4771u : 0xB4772u);
  std::vector<Amps> loads(kNodes, milliamps(0.0));
  std::vector<Seconds> sustained(kNodes, seconds(0.0));
  int deaths_seen = 0;

  for (int step = 0; step < kSteps; ++step) {
    // Mixed schedule: mostly heavy draws (to reach death paths within the
    // step budget), occasional rests to exercise the recovery terms.
    const double dt = rng.uniform(1.0, 2000.0);
    for (std::size_t n = 0; n < kNodes; ++n) {
      const double mode = rng.uniform();
      const double ma = mode < 0.15 ? 0.0 : rng.uniform(20.0, 4000.0);
      loads[n] = milliamps(ma);
    }
    bank->advance_all(loads, seconds(dt), sustained);
    for (std::size_t n = 0; n < kNodes; ++n) {
      const Seconds got = refs[n]->discharge(loads[n], seconds(dt));
      EXPECT_EQ(sustained[n].value(), got.value())
          << "slot " << n << " step " << step;
      if (refs[n]->empty()) ++deaths_seen;
    }
  }

  const Amps probe = milliamps(85.0);
  for (std::size_t n = 0; n < kNodes; ++n) {
    SCOPED_TRACE(n);
    expect_slot_matches(*bank, n, *refs[n], probe);
  }
  // The schedule above must actually have exercised the death path.
  EXPECT_GT(deaths_seen, 0) << "schedule too gentle: no mid-step deaths";
}

// Same property driven through the per-slot Battery views — the interface
// core::Node holds — including discharge on already-dead slots.
TEST_P(BankLockstepTest, ViewsTrackScalarBatteriesBitForBit) {
  const Model model = GetParam();
  constexpr std::size_t kNodes = 8;
  constexpr int kSteps = 300;

  auto bank = make_bank(model);
  std::vector<std::unique_ptr<Battery>> views;
  std::vector<std::unique_ptr<Battery>> refs;
  for (std::size_t n = 0; n < kNodes; ++n) {
    views.push_back(bank->add_view());
    refs.push_back(make_scalar(model));
  }

  Rng rng(model == Model::kKibam ? 0x51DE1u : 0x51DE2u);
  for (int step = 0; step < kSteps; ++step) {
    for (std::size_t n = 0; n < kNodes; ++n) {
      const Amps i = milliamps(rng.uniform() < 0.2
                                   ? 0.0
                                   : rng.uniform(10.0, 5000.0));
      const Seconds dt = seconds(rng.uniform(0.5, 3000.0));
      const double got = views[n]->discharge(i, dt).value();
      const double want = refs[n]->discharge(i, dt).value();
      EXPECT_EQ(got, want) << "slot " << n << " step " << step;
      EXPECT_EQ(views[n]->empty(), refs[n]->empty());
      EXPECT_EQ(views[n]->state_of_charge(), refs[n]->state_of_charge());
    }
  }
}

// Death and revive: a killed slot reports empty and sustains nothing, and
// reset() through the view restores the factory state exactly (how
// fault-injection revives a node's pack).
TEST_P(BankLockstepTest, DeathAndResetMatchScalar) {
  const Model model = GetParam();
  auto bank = make_bank(model);
  auto view = bank->add_view();
  auto ref = make_scalar(model);

  // Drain to death with a heavy constant load.
  const Amps heavy = milliamps(6000.0);
  for (int step = 0; step < 10000 && !ref->empty(); ++step) {
    const double got = view->discharge(heavy, seconds(3600.0)).value();
    const double want = ref->discharge(heavy, seconds(3600.0)).value();
    ASSERT_EQ(got, want);
  }
  ASSERT_TRUE(ref->empty());
  EXPECT_TRUE(view->empty());
  EXPECT_EQ(view->discharge(heavy, seconds(10.0)).value(),
            ref->discharge(heavy, seconds(10.0)).value());
  EXPECT_EQ(view->time_to_empty(heavy).value(),
            ref->time_to_empty(heavy).value());

  // Revive.
  view->reset();
  ref->reset();
  expect_slot_matches(*bank, 0, *ref, milliamps(120.0));
  EXPECT_EQ(view->discharge(heavy, seconds(100.0)).value(),
            ref->discharge(heavy, seconds(100.0)).value());
}

// Views clone() into self-contained batteries: the clone matches the
// source state, then evolves independently of the bank.
TEST_P(BankLockstepTest, ViewCloneDetachesFromBank) {
  const Model model = GetParam();
  auto bank = make_bank(model);
  auto view = bank->add_view();
  auto ref = make_scalar(model);

  view->discharge(milliamps(500.0), seconds(1000.0));
  ref->discharge(milliamps(500.0), seconds(1000.0));

  auto clone = view->clone();
  EXPECT_EQ(clone->state_of_charge(), ref->state_of_charge());
  EXPECT_EQ(clone->describe(), ref->describe());

  // Diverge the original; the clone must not move.
  const double soc_before = clone->state_of_charge();
  view->discharge(milliamps(500.0), seconds(1000.0));
  EXPECT_EQ(clone->state_of_charge(), soc_before);

  // And the clone still steps like the scalar from the cloned state.
  ref->reset();
  auto scalar_twin = make_scalar(model);
  scalar_twin->discharge(milliamps(500.0), seconds(1000.0));
  EXPECT_EQ(clone->discharge(milliamps(300.0), seconds(500.0)).value(),
            scalar_twin->discharge(milliamps(300.0), seconds(500.0)).value());
  EXPECT_EQ(clone->state_of_charge(), scalar_twin->state_of_charge());
}

// Zero-length and zero-current steps are exact no-ops/identities, same as
// the scalar sentinels.
TEST_P(BankLockstepTest, ZeroSentinelsMatchScalar) {
  const Model model = GetParam();
  auto bank = make_bank(model);
  bank->add_slot();
  auto ref = make_scalar(model);

  std::vector<Amps> zero{milliamps(0.0)};
  bank->advance_all(zero, seconds(12345.0));
  ref->discharge(milliamps(0.0), seconds(12345.0));
  expect_slot_matches(*bank, 0, *ref, milliamps(0.0));
  EXPECT_TRUE(std::isinf(bank->time_to_empty(0, milliamps(0.0)).value()));

  std::vector<Amps> load{milliamps(250.0)};
  bank->advance_all(load, seconds(0.0));
  ref->discharge(milliamps(250.0), seconds(0.0));
  expect_slot_matches(*bank, 0, *ref, milliamps(250.0));
}

TEST_P(BankLockstepTest, DescribeMatchesScalar) {
  const Model model = GetParam();
  auto bank = make_bank(model);
  EXPECT_EQ(bank->describe(), make_scalar(model)->describe());
}

INSTANTIATE_TEST_SUITE_P(BothModels, BankLockstepTest,
                         ::testing::Values(Model::kKibam, Model::kRakhmatov),
                         [](const auto& info) {
                           return info.param == Model::kKibam ? "Kibam"
                                                              : "Rakhmatov";
                         });

// Capacity-variance wiring: pre-discharging a view (how PipelineSystem
// applies kCapacityScale faults through the public interface) leaves the
// slot in exactly the state the scalar path would produce.
TEST(BatteryBankTest, PreDischargeMatchesScalarCapacityScaling) {
  auto bank = std::make_unique<BatteryBank>(itsy_kibam_params());
  auto view = bank->add_view();
  auto ref = make_kibam_battery(itsy_kibam_params());

  const double factor = 0.6;
  const Amps reference = milliamps(100.0);
  const Seconds burn_v = view->time_to_empty(reference) * (1.0 - factor);
  const Seconds burn_r = ref->time_to_empty(reference) * (1.0 - factor);
  EXPECT_EQ(burn_v.value(), burn_r.value());
  view->discharge(reference, burn_v);
  ref->discharge(reference, burn_r);
  EXPECT_EQ(view->state_of_charge(), ref->state_of_charge());
}

TEST(BatteryBankTest, ResetAllRestoresEverySlot) {
  auto bank = std::make_unique<BatteryBank>(itsy_rakhmatov_params());
  std::vector<Amps> loads;
  for (int n = 0; n < 4; ++n) {
    bank->add_slot();
    loads.push_back(milliamps(400.0 * (n + 1)));
  }
  bank->advance_all(loads, seconds(5000.0));
  bank->reset_all();
  auto fresh = make_rakhmatov_battery(itsy_rakhmatov_params());
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(bank->state_of_charge(n), fresh->state_of_charge());
    EXPECT_FALSE(bank->empty(n));
  }
}

}  // namespace
