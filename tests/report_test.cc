#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"

namespace deslp::core {
namespace {

std::vector<ExperimentResult> sample_results() {
  std::vector<ExperimentResult> results;
  ExperimentResult r1;
  r1.id = "1";
  r1.title = "Baseline";
  r1.node_count = 1;
  r1.frames = 1000;
  r1.battery_life = hours(2.0);
  r1.normalized_life = hours(2.0);
  r1.rnorm = 1.0;
  r1.paper = {6.13, 9600, 1.0};
  NodeReport n1;
  n1.name = "Node1";
  n1.died = true;
  n1.death_time = hours(2.0);
  n1.final_soc = 0.25;
  n1.average_current = milliamps(100.0);
  r1.details.nodes.push_back(n1);
  results.push_back(r1);

  ExperimentResult r2;
  r2.id = "2C";
  r2.title = "Rotation";
  r2.node_count = 2;
  r2.frames = 4000;
  r2.battery_life = hours(8.0);
  r2.normalized_life = hours(4.0);
  r2.rnorm = 2.0;
  r2.paper = {17.82, 27900, 1.45};
  NodeReport n2 = n1;
  n2.rotations = 40;
  r2.details.nodes = {n2, n2};
  results.push_back(r2);

  ExperimentResult r0;
  r0.id = "0A";
  r0.title = "No IO";
  r0.frames = 500;
  r0.battery_life = hours(1.0);
  r0.normalized_life = hours(1.0);
  results.push_back(r0);
  return results;
}

TEST(Report, SummaryTableHasAllRows) {
  const std::string out = render_summary_table(sample_results());
  EXPECT_NE(out.find("Baseline"), std::string::npos);
  EXPECT_NE(out.find("Rotation"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);   // T sim
  EXPECT_NE(out.find("200%"), std::string::npos);   // Rnorm
  EXPECT_NE(out.find("17.82"), std::string::npos);  // paper T
}

TEST(Report, NodeTableListsEveryNode) {
  const std::string out = render_node_table(sample_results());
  // r1 has one node, r2 two.
  std::size_t count = 0;
  for (std::size_t pos = out.find("Node1"); pos != std::string::npos;
       pos = out.find("Node1", pos + 1))
    ++count;
  EXPECT_EQ(count, 3u);
  EXPECT_NE(out.find("25%"), std::string::npos);
}

TEST(Report, Fig10BarsExcludeNoIoExperiments) {
  const std::string out = render_fig10_bars(sample_results());
  EXPECT_NE(out.find("(1 )"), std::string::npos);
  EXPECT_NE(out.find("(2C)"), std::string::npos);
  EXPECT_EQ(out.find("0A"), std::string::npos);
  EXPECT_NE(out.find("Rnorm=200%"), std::string::npos);
}

TEST(Report, ResultsCsvRoundTripsValues) {
  std::ostringstream os;
  write_results_csv(sample_results(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("id,title,nodes,frames"), std::string::npos);
  EXPECT_NE(out.find("2C,Rotation,2,4000,8.0000,4.0000,2.0000"),
            std::string::npos);
  // Three data rows + header.
  std::size_t lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4u);
}

TEST(Report, NodeCsvHasRowPerNode) {
  std::ostringstream os;
  write_node_csv(sample_results(), os);
  std::size_t lines = 0;
  for (char c : os.str())
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4u);  // header + 3 node rows
}

}  // namespace
}  // namespace deslp::core
