// Unit tests for the frame-path pool primitives (util/arena.h,
// util/ring.h): slab arena recycling with generation-checked handles,
// byte-buffer pooling with capacity retention, and the growable ring
// buffer that replaces std::deque on the hot path.
//
// The allocation-counting steady-state tests live at the bottom: they
// install a counting global operator new and assert that recycling really
// does stop touching the allocator once warm.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "net/session.h"
#include "sim/engine.h"
#include "util/arena.h"
#include "util/ring.h"

namespace {

using deslp::util::Arena;
using deslp::util::BufferPool;
using deslp::util::RingBuffer;

// ---------------------------------------------------------------------------
// Counting allocator hook. Global operator new/delete forward to malloc and
// tick a counter; tests snapshot the counter around a steady-state loop.
// ---------------------------------------------------------------------------

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Arena<T>
// ---------------------------------------------------------------------------

TEST(ArenaTest, AcquireReturnsDefaultConstructedValue) {
  Arena<int> arena;
  auto h = arena.acquire();
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(arena.get(h), 0);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.size(), 1u);
}

TEST(ArenaTest, ReleaseThenAcquireRecyclesTheSlot) {
  Arena<int> arena;
  auto a = arena.acquire();
  arena.get(a) = 42;
  arena.release(a);
  EXPECT_EQ(arena.live(), 0u);

  auto b = arena.acquire();
  // Same slot, bumped generation: the old handle is dead, the new one live.
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_NE(b.gen, a.gen);
  EXPECT_FALSE(arena.alive(a));
  EXPECT_TRUE(arena.alive(b));
  // Recycled slots keep the parked object; callers reset fields they use.
  EXPECT_EQ(arena.get(b), 42);
  EXPECT_EQ(arena.recycled(), 1u);
  EXPECT_EQ(arena.size(), 1u);
}

TEST(ArenaTest, StaleHandleGoesDeadOnRelease) {
  Arena<int> arena;
  auto h = arena.acquire();
  EXPECT_TRUE(arena.alive(h));
  arena.release(h);
  EXPECT_FALSE(arena.alive(h));
  // Default / never-acquired handles are never alive.
  EXPECT_FALSE(arena.alive(Arena<int>::Handle{}));
}

TEST(ArenaTest, ReferencesStayStableAcrossChunkGrowth) {
  Arena<std::uint64_t> arena;
  std::vector<Arena<std::uint64_t>::Handle> handles;
  auto first = arena.acquire();
  arena.get(first) = 0xDEADBEEFu;
  std::uint64_t* pinned = &arena.get(first);
  // Push well past one 256-slot chunk.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto h = arena.acquire();
    arena.get(h) = i;
    handles.push_back(h);
  }
  EXPECT_EQ(pinned, &arena.get(first));
  EXPECT_EQ(arena.get(first), 0xDEADBEEFu);
  for (std::uint64_t i = 0; i < handles.size(); ++i)
    EXPECT_EQ(arena.get(handles[i]), i);
  EXPECT_EQ(arena.live(), 1001u);
}

TEST(ArenaTest, FreelistIsLifoAndCountsRecycles) {
  Arena<int> arena;
  auto a = arena.acquire();
  auto b = arena.acquire();
  auto c = arena.acquire();
  arena.release(a);
  arena.release(c);
  // LIFO: most recently released comes back first (cache-warm slot).
  auto d = arena.acquire();
  EXPECT_EQ(d.slot, c.slot);
  auto e = arena.acquire();
  EXPECT_EQ(e.slot, a.slot);
  EXPECT_EQ(arena.recycled(), 2u);
  EXPECT_EQ(arena.acquired(), 5u);
  arena.release(b);
  arena.release(d);
  arena.release(e);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.size(), 3u);
}

TEST(ArenaTest, RecyclingAnObjectWithHeapCapacityAllocatesNothing) {
  Arena<std::string> arena;
  // Warm-up: give the slot's string real heap capacity (beyond SSO).
  auto h = arena.acquire();
  arena.get(h).assign(200, 'x');
  arena.release(h);

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 1000; ++i) {
    auto g = arena.acquire();
    std::string& s = arena.get(g);
    s.clear();
    s.append(100, static_cast<char>('a' + (i % 26)));
    arena.release(g);
  }
  EXPECT_EQ(alloc_count(), before)
      << "steady-state arena recycling must not touch the allocator";
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPoolTest, FirstAcquireFallsThroughToUpstream) {
  BufferPool pool;
  auto b = pool.acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.acquires(), 1u);
  EXPECT_EQ(pool.upstream_allocs(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
}

TEST(BufferPoolTest, ReleaseParksAndAcquireReusesCapacity) {
  BufferPool pool;
  auto b = pool.acquire();
  b.resize(4096);
  const std::uint8_t* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.parked(), 1u);

  auto c = pool.acquire();
  EXPECT_TRUE(c.empty());
  EXPECT_GE(c.capacity(), 4096u);
  EXPECT_EQ(c.data(), data);  // literally the same heap block
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.upstream_allocs(), 1u);
}

TEST(BufferPoolTest, SteadyStateCycleAllocatesNothing) {
  BufferPool pool;
  // Warm-up: grow two distinct buffers to working size and park both
  // (acquire both before releasing, or the second acquire would just
  // recycle the first and the pool would only ever hold one buffer).
  auto w0 = pool.acquire();
  auto w1 = pool.acquire();
  w0.resize(2048);
  w1.resize(2048);
  pool.release(std::move(w0));
  pool.release(std::move(w1));
  const std::uint64_t upstream = pool.upstream_allocs();
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 10000; ++i) {
    auto b = pool.acquire();
    b.resize(1024);
    auto c = pool.acquire();
    c.resize(2000);
    pool.release(std::move(b));
    pool.release(std::move(c));
  }
  EXPECT_EQ(pool.upstream_allocs(), upstream);
  EXPECT_EQ(alloc_count(), before)
      << "steady-state pool cycling must not touch the allocator";
}

// ---------------------------------------------------------------------------
// RingBuffer<T>
// ---------------------------------------------------------------------------

TEST(RingBufferTest, FifoOrderAcrossWraparound) {
  RingBuffer<int> ring;
  // Interleave pushes and pops so the head walks around the storage.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) ring.push_back(next_push++);
    for (int i = 0; i < 2; ++i) EXPECT_EQ(ring.pop_front(), next_pop++);
  }
  EXPECT_EQ(ring.size(), 100u);
  while (!ring.empty()) EXPECT_EQ(ring.pop_front(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingBufferTest, GrowthPreservesOrderAndIndexing) {
  RingBuffer<int> ring;
  // Offset the head first so growth has to unwrap a wrapped ring.
  for (int i = 0; i < 5; ++i) ring.push_back(i);
  for (int i = 0; i < 5; ++i) ring.pop_front();
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  ASSERT_EQ(ring.size(), 100u);
  EXPECT_EQ(ring.front(), 0);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(ring[static_cast<std::size_t>(i)], i);
}

TEST(RingBufferTest, ClearEmptiesButKeepsCapacity) {
  RingBuffer<int> ring;
  for (int i = 0; i < 50; ++i) ring.push_back(i);
  const std::size_t cap = ring.capacity();
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), cap);
  ring.push_back(7);
  EXPECT_EQ(ring.front(), 7);
}

TEST(RingBufferTest, SteadyStateChurnAllocatesNothing) {
  RingBuffer<std::vector<std::uint8_t>> ring;
  // Warm-up: establish the high-water mark and element capacities.
  for (int i = 0; i < 8; ++i)
    ring.push_back(std::vector<std::uint8_t>(512));
  while (!ring.empty()) ring.pop_front();

  // Recycle parked shells' capacity: pop, refill in place, push back.
  std::vector<std::vector<std::uint8_t>> spares(4);
  for (auto& s : spares) s.reserve(512);

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 10000; ++i) {
    auto& buf = spares[static_cast<std::size_t>(i) % spares.size()];
    buf.resize(256);
    ring.push_back(std::move(buf));
    buf = ring.pop_front();
  }
  EXPECT_EQ(alloc_count(), before)
      << "a warm ring cycling pooled payloads must not touch the allocator";
}

// ---------------------------------------------------------------------------
// End-to-end byte stack: with a shared BufferPool in SessionOptions, the
// steady-state message -> chunk -> segment -> PPP frame -> UART -> deframe
// -> reassembly -> delivery loop must not touch the allocator at all once
// the pool, rings, event slabs, and scratch buffers are warm.
// ---------------------------------------------------------------------------

deslp::sim::Task drain_and_release(deslp::net::PppSession& session,
                                   BufferPool& pool, std::size_t& delivered) {
  for (;;) {
    auto m = co_await session.received().recv();
    if (!m) co_return;
    ++delivered;
    pool.release(std::move(*m));
  }
}

TEST(SessionStackPoolTest, SteadyStateFramePathAllocatesNothing) {
  constexpr std::size_t kMessageSize = 96;  // single chunk under the MTU
  BufferPool pool;
  deslp::net::SessionOptions opt;
  opt.pool = &pool;

  deslp::sim::Engine engine;
  deslp::net::Uart a_to_b{engine, deslp::kilobits_per_second(115.2)};
  deslp::net::Uart b_to_a{engine, deslp::kilobits_per_second(115.2)};
  deslp::net::PppSession a{engine, opt};
  deslp::net::PppSession b{engine, opt};
  a.attach_uarts(a_to_b, b_to_a);
  b.attach_uarts(b_to_a, a_to_b);

  std::size_t delivered = 0;
  engine.spawn(drain_and_release(b, pool, delivered));

  const auto send_one = [&](int i) {
    auto msg = pool.acquire();
    msg.assign(kMessageSize, static_cast<std::uint8_t>(i & 0xFF));
    a.send_message(std::move(msg));
    engine.run();
  };

  // Warm-up: grow every pool buffer, ring, scratch vector, and event slab
  // to its steady-state high-water mark.
  for (int i = 0; i < 64; ++i) send_one(i);
  ASSERT_EQ(delivered, 64u);

  const std::uint64_t upstream = pool.upstream_allocs();
  const std::uint64_t before = alloc_count();
  for (int i = 64; i < 1064; ++i) send_one(i);
  EXPECT_EQ(delivered, 1064u);
  EXPECT_EQ(pool.upstream_allocs(), upstream)
      << "a warm session stack must recycle its pooled working set";
  EXPECT_EQ(alloc_count(), before)
      << "the steady-state frame path must not touch the allocator";
  EXPECT_EQ(b.frames_rejected(), 0u);
}

}  // namespace
