#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "battery/battery.h"
#include "battery/calibrate.h"
#include "battery/kibam.h"
#include "battery/load.h"
#include "battery/rakhmatov.h"

namespace deslp::battery {
namespace {

// --- ideal ------------------------------------------------------------------

TEST(IdealBattery, ExactCoulombCounting) {
  auto b = make_ideal_battery(milliamp_hours(100.0));
  EXPECT_DOUBLE_EQ(b->state_of_charge(), 1.0);
  b->discharge(milliamps(100.0), hours(0.5));
  EXPECT_NEAR(b->state_of_charge(), 0.5, 1e-12);
  EXPECT_NEAR(to_milliamp_hours(b->nominal_remaining()), 50.0, 1e-9);
}

TEST(IdealBattery, DiesAtExactTime) {
  auto b = make_ideal_battery(milliamp_hours(100.0));
  const Seconds sustained = b->discharge(milliamps(100.0), hours(2.0));
  EXPECT_NEAR(to_hours(sustained), 1.0, 1e-9);
  EXPECT_TRUE(b->empty());
  EXPECT_DOUBLE_EQ(b->discharge(milliamps(10.0), hours(1.0)).value(), 0.0);
}

TEST(IdealBattery, TimeToEmptyMatchesCapacityOverCurrent) {
  auto b = make_ideal_battery(milliamp_hours(200.0));
  EXPECT_NEAR(to_hours(b->time_to_empty(milliamps(50.0))), 4.0, 1e-9);
  EXPECT_TRUE(std::isinf(b->time_to_empty(amps(0.0)).value()));
}

TEST(IdealBattery, RateIndependentCapacity) {
  // No rate-capacity effect: delivered charge is the same at any current.
  for (double ma : {10.0, 100.0, 1000.0}) {
    auto b = make_ideal_battery(milliamp_hours(100.0));
    const Seconds life = b->time_to_empty(milliamps(ma));
    EXPECT_NEAR(to_milliamp_hours(charge(milliamps(ma), life)), 100.0, 1e-6);
  }
}

TEST(IdealBattery, CanSustainDefaultsToTimeToEmpty) {
  // The base-class default is the literal predicate time_to_empty(i) >= dt.
  auto b = make_ideal_battery(milliamp_hours(100.0));
  EXPECT_TRUE(b->can_sustain(milliamps(100.0), hours(0.999)));
  EXPECT_FALSE(b->can_sustain(milliamps(100.0), hours(1.001)));
  EXPECT_TRUE(b->can_sustain(amps(0.0), hours(1e6)));
  b->discharge(milliamps(100.0), hours(2.0));
  ASSERT_TRUE(b->empty());
  EXPECT_TRUE(b->can_sustain(milliamps(1.0), seconds(0.0)));
  EXPECT_FALSE(b->can_sustain(milliamps(1.0), seconds(1.0)));
}

TEST(IdealBattery, ResetRestoresFullCharge) {
  auto b = make_ideal_battery(milliamp_hours(100.0));
  b->discharge(milliamps(100.0), hours(10.0));
  EXPECT_TRUE(b->empty());
  b->reset();
  EXPECT_FALSE(b->empty());
  EXPECT_DOUBLE_EQ(b->state_of_charge(), 1.0);
}

// --- peukert ----------------------------------------------------------------

TEST(PeukertBattery, ReferenceCurrentDeliversNominalCapacity) {
  auto b = make_peukert_battery(milliamp_hours(100.0), 1.3,
                                milliamps(100.0));
  EXPECT_NEAR(to_hours(b->time_to_empty(milliamps(100.0))), 1.0, 1e-9);
}

TEST(PeukertBattery, HigherRateDeliversLess) {
  auto b = make_peukert_battery(milliamp_hours(100.0), 1.3,
                                milliamps(100.0));
  // At 2x the reference current, lifetime is (1/2)^k of the nominal hour.
  const double expected_hours = std::pow(0.5, 1.3);
  EXPECT_NEAR(to_hours(b->time_to_empty(milliamps(200.0))), expected_hours,
              1e-9);
  // And at half the rate it delivers more than nominal.
  EXPECT_GT(to_hours(b->time_to_empty(milliamps(50.0))), 2.0);
}

TEST(PeukertBattery, KEqualsOneIsIdeal) {
  auto p = make_peukert_battery(milliamp_hours(100.0), 1.0, milliamps(50.0));
  auto i = make_ideal_battery(milliamp_hours(100.0));
  for (double ma : {20.0, 80.0, 320.0}) {
    EXPECT_NEAR(p->time_to_empty(milliamps(ma)).value(),
                i->time_to_empty(milliamps(ma)).value(), 1e-6);
  }
}

TEST(PeukertBattery, NoRecoveryDuringRest) {
  auto b = make_peukert_battery(milliamp_hours(100.0), 1.3,
                                milliamps(100.0));
  b->discharge(milliamps(100.0), hours(0.5));
  const double before = b->state_of_charge();
  b->discharge(amps(0.0), hours(5.0));
  EXPECT_DOUBLE_EQ(b->state_of_charge(), before);
}

// --- kibam --------------------------------------------------------------------

KibamParams test_params() {
  return KibamParams{milliamp_hours(1000.0), 0.3, 5e-4};
}

TEST(KibamBattery, ChargeConservationDuringDischarge) {
  auto b = make_kibam_battery(test_params());
  const Coulombs before = b->nominal_remaining();
  b->discharge(milliamps(100.0), hours(1.0));
  const Coulombs after = b->nominal_remaining();
  EXPECT_NEAR(to_milliamp_hours(before - after), 100.0, 1e-6);
}

TEST(KibamBattery, RecoveryEffectDuringRest) {
  // Drain hard, then rest: the *available* charge recovers (total does
  // not), visible as a longer time-to-empty after the rest.
  auto b = make_kibam_battery(test_params());
  b->discharge(milliamps(500.0), hours(0.5));
  const Seconds before_rest = b->time_to_empty(milliamps(500.0));
  b->discharge(amps(0.0), hours(2.0));
  const Seconds after_rest = b->time_to_empty(milliamps(500.0));
  EXPECT_GT(after_rest.value(), before_rest.value() * 1.2);
  // Total charge is unchanged by the rest.
}

TEST(KibamBattery, RateCapacityEffect) {
  // Delivered charge shrinks with the discharge rate.
  auto lo = make_kibam_battery(test_params());
  auto hi = make_kibam_battery(test_params());
  const Seconds t_lo = lo->time_to_empty(milliamps(50.0));
  const Seconds t_hi = hi->time_to_empty(milliamps(500.0));
  const double delivered_lo = to_milliamp_hours(charge(milliamps(50.0), t_lo));
  const double delivered_hi =
      to_milliamp_hours(charge(milliamps(500.0), t_hi));
  EXPECT_GT(delivered_lo, delivered_hi * 1.5);
}

TEST(KibamBattery, ClosedFormMatchesEulerIntegration) {
  // The closed form must agree with a fine explicit-Euler integration of
  //   dy1/dt = -I + k'(c*y2 - (1-c)*y1) ... expressed via well heights.
  const KibamParams p = test_params();
  auto b = make_kibam_battery(p);
  const double current = 0.2;  // amps
  const double dt_total = 900.0;

  // Euler with 1 ms steps.
  double y1 = p.capacity.value() * p.c;
  double y2 = p.capacity.value() * (1.0 - p.c);
  const double h = 0.001;
  for (double t = 0.0; t < dt_total; t += h) {
    const double h1 = y1 / p.c;
    const double h2 = y2 / (1.0 - p.c);
    const double flow = p.k_prime * p.c * (1.0 - p.c) * (h2 - h1);
    y1 += h * (-current + flow);
    y2 += h * (-flow);
  }

  b->discharge(amps(current), seconds(dt_total));
  const double total_closed = b->nominal_remaining().value();
  EXPECT_NEAR(total_closed, y1 + y2, p.capacity.value() * 1e-6);
  // Check y1 specifically through time_to_empty at a huge current (which
  // is ~ y1 / I when I dwarfs the refill rate).
  const double tte = b->time_to_empty(amps(100.0)).value();
  EXPECT_NEAR(tte * 100.0, y1, y1 * 0.02);
}

TEST(KibamBattery, DischargeReturnsExactDeathTime) {
  auto b = make_kibam_battery(test_params());
  const Seconds tte = b->time_to_empty(milliamps(300.0));
  const Seconds sustained =
      b->discharge(milliamps(300.0), tte + hours(5.0));
  EXPECT_NEAR(sustained.value(), tte.value(), tte.value() * 1e-6);
  EXPECT_TRUE(b->empty());
}

TEST(KibamBattery, PulsedOutlivesConstantPeak) {
  // A 50% duty cycle at 400 mA must deliver more total charge than
  // constant 400 mA (recovery during the off phases).
  auto pulsed = make_kibam_battery(test_params());
  auto constant = make_kibam_battery(test_params());
  const LifetimeResult lp = lifetime_under_cycle(
      *pulsed, {{milliamps(400.0), seconds(10.0)},
                {amps(0.0), seconds(10.0)}});
  const Seconds tc = constant->time_to_empty(milliamps(400.0));
  // On-time of the pulsed run exceeds the constant lifetime.
  EXPECT_GT(lp.lifetime.value() / 2.0, tc.value());
}

TEST(KibamBattery, CanSustainBracketsTimeToEmpty) {
  // The closed-form override (available charge still positive after dt)
  // must agree with the bisected time_to_empty on both sides of the death
  // instant — it is the predicate the idle death-watch trusts.
  auto b = make_kibam_battery(test_params());
  b->discharge(milliamps(150.0), hours(1.0));
  ASSERT_FALSE(b->empty());
  const double tte = b->time_to_empty(milliamps(300.0)).value();
  EXPECT_TRUE(b->can_sustain(milliamps(300.0), seconds(tte * 0.999)));
  EXPECT_FALSE(b->can_sustain(milliamps(300.0), seconds(tte * 1.001)));
  EXPECT_TRUE(b->can_sustain(amps(0.0), hours(1e5)));
  b->discharge(milliamps(300.0), hours(1000.0));
  ASSERT_TRUE(b->empty());
  EXPECT_TRUE(b->can_sustain(milliamps(1.0), seconds(0.0)));
  EXPECT_FALSE(b->can_sustain(milliamps(1.0), seconds(1.0)));
}

TEST(KibamBattery, CloneIsIndependent) {
  auto a = make_kibam_battery(test_params());
  a->discharge(milliamps(100.0), hours(1.0));
  auto b = a->clone();
  a->discharge(milliamps(100.0), hours(1.0));
  EXPECT_GT(b->nominal_remaining().value(), a->nominal_remaining().value());
}

// --- rakhmatov ------------------------------------------------------------------

RakhmatovParams rv_params() {
  return RakhmatovParams{milliamp_hours(1000.0), 3e-4, 10};
}

TEST(RakhmatovBattery, LowRateDeliversNearAlpha) {
  auto b = make_rakhmatov_battery(rv_params());
  const Seconds t = b->time_to_empty(milliamps(10.0));
  EXPECT_NEAR(to_milliamp_hours(charge(milliamps(10.0), t)), 1000.0, 30.0);
}

TEST(RakhmatovBattery, RateCapacityEffect) {
  auto b = make_rakhmatov_battery(rv_params());
  const Seconds t = b->time_to_empty(milliamps(500.0));
  EXPECT_LT(to_milliamp_hours(charge(milliamps(500.0), t)), 950.0);
}

TEST(RakhmatovBattery, RecoveryDuringRest) {
  auto b = make_rakhmatov_battery(rv_params());
  b->discharge(milliamps(200.0), hours(0.5));
  ASSERT_FALSE(b->empty());
  const double soc_loaded = b->state_of_charge();
  b->discharge(amps(0.0), hours(2.0));
  EXPECT_GT(b->state_of_charge(), soc_loaded);
}

TEST(RakhmatovBattery, DeathIsLatched) {
  auto b = make_rakhmatov_battery(rv_params());
  b->discharge(amps(2.0), hours(10.0));
  EXPECT_TRUE(b->empty());
  // A long rest does not resurrect a cut-off node.
  b->discharge(amps(0.0), hours(10.0));
  EXPECT_TRUE(b->empty());
}

TEST(RakhmatovBattery, OneExpMatchesDirectExp) {
  // The production model builds the per-term decay ladder d^(m^2) from one
  // std::exp via decay_m = decay_{m-1} * d^(2m-1). This reference advances
  // the same recurrence with a direct std::exp(-beta^2 m^2 t) per term;
  // under a pulsed load the two stay within a few ulps of each other.
  const RakhmatovParams p = rv_params();
  auto b = make_rakhmatov_battery(p);

  const double b2 = p.beta_squared;
  const double alpha = p.alpha.value();
  double delivered = 0.0;
  std::vector<double> a(static_cast<std::size_t>(p.terms), 0.0);
  auto advance_ref = [&](double current, double t) {
    for (std::size_t m = 1; m <= a.size(); ++m) {
      const double rate = b2 * static_cast<double>(m) * static_cast<double>(m);
      const double e = std::exp(-rate * t);
      a[m - 1] = a[m - 1] * e + current * (1.0 - e) / rate;
    }
    delivered += current * t;
  };
  auto sigma_ref = [&] {
    double s = delivered;
    for (double am : a) s += 2.0 * am;
    return s;
  };

  const std::vector<std::pair<double, double>> pulses = {
      {0.200, 600.0}, {0.0, 300.0},   {0.450, 120.0}, {0.080, 3600.0},
      {0.0, 1800.0},  {0.350, 900.0}, {0.020, 7200.0}};
  for (const auto& [current, t] : pulses) {
    const Seconds sustained = b->discharge(amps(current), seconds(t));
    ASSERT_DOUBLE_EQ(sustained.value(), t);  // all pulses stay above cutoff
    advance_ref(current, t);
    EXPECT_NEAR(b->nominal_remaining().value(), alpha - sigma_ref(),
                alpha * 1e-12);
    EXPECT_NEAR(b->state_of_charge(), 1.0 - sigma_ref() / alpha, 1e-12);
  }
  ASSERT_FALSE(b->empty());
}

TEST(RakhmatovBattery, CanSustainBracketsTimeToEmpty) {
  // can_sustain evaluates sigma at the endpoint — the same crossing
  // time_to_empty bisects for — so the two must agree around death.
  auto b = make_rakhmatov_battery(rv_params());
  b->discharge(milliamps(200.0), hours(1.0));
  ASSERT_FALSE(b->empty());
  const double tte = b->time_to_empty(milliamps(400.0)).value();
  EXPECT_TRUE(b->can_sustain(milliamps(400.0), seconds(tte * 0.999)));
  EXPECT_FALSE(b->can_sustain(milliamps(400.0), seconds(tte * 1.001)));
  b->discharge(milliamps(400.0), seconds(tte * 2.0));
  ASSERT_TRUE(b->empty());
  EXPECT_TRUE(b->can_sustain(milliamps(1.0), seconds(0.0)));
  EXPECT_FALSE(b->can_sustain(milliamps(1.0), seconds(1.0)));
}

// --- load profiles ----------------------------------------------------------------

TEST(Load, CycleAverageAndPeriod) {
  const std::vector<LoadPhase> cycle{{milliamps(100.0), seconds(1.0)},
                                     {milliamps(50.0), seconds(3.0)}};
  EXPECT_NEAR(to_milliamps(cycle_average_current(cycle)), 62.5, 1e-9);
  EXPECT_DOUBLE_EQ(cycle_period(cycle).value(), 4.0);
}

TEST(Load, LifetimeCountsCompleteCycles) {
  auto b = make_ideal_battery(milliamp_hours(10.0));
  // One cycle consumes 100 mA * 36 s = 1 mAh; exactly 10 cycles fit.
  const LifetimeResult r = lifetime_under_cycle(
      *b, {{milliamps(100.0), seconds(36.0)}});
  EXPECT_EQ(r.complete_cycles, 10);
  EXPECT_NEAR(r.lifetime.value(), 360.0, 1e-6);
}

TEST(Load, PartialFinalCycleNotCounted) {
  auto b = make_ideal_battery(milliamp_hours(10.0));
  const LifetimeResult r = lifetime_under_cycle(
      *b, {{milliamps(100.0), seconds(100.0)}});  // 3.6 cycles
  EXPECT_EQ(r.complete_cycles, 3);
}

TEST(Load, RespectsMaxTime) {
  auto b = make_ideal_battery(milliamp_hours(1e9));
  const LifetimeResult r = lifetime_under_cycle(
      *b, {{milliamps(1.0), seconds(1.0)}}, seconds(100.0));
  EXPECT_LE(r.lifetime.value(), 101.0);
}

// --- calibration -------------------------------------------------------------------

TEST(Calibrate, RecoversSyntheticKibamParameters) {
  // Generate reference lifetimes from a known battery, then fit from a
  // perturbed start: the fit must reproduce the reference lifetimes.
  const KibamParams truth{milliamp_hours(800.0), 0.25, 8e-4};
  std::vector<CalibrationCase> cases;
  const std::vector<std::vector<LoadPhase>> profiles = {
      {{milliamps(120.0), seconds(1.1)}},
      {{milliamps(120.0), seconds(1.1)}, {milliamps(40.0), seconds(1.2)}},
      {{milliamps(60.0), seconds(2.0)}, {milliamps(30.0), seconds(0.3)}},
      {{milliamps(200.0), seconds(0.5)}, {amps(0.0), seconds(1.8)}},
  };
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    auto b = make_kibam_battery(truth);
    const LifetimeResult r = lifetime_under_cycle(*b, profiles[i]);
    cases.push_back(CalibrationCase{"case" + std::to_string(i), profiles[i],
                                    r.lifetime, 1.0});
  }
  const KibamParams start{milliamp_hours(1500.0), 0.5, 3e-4};
  const KibamFit fit = fit_kibam(cases, start);
  EXPECT_LT(fit.rms_log_error, 0.01);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_NEAR(fit.modeled[i].value(), cases[i].reference_lifetime.value(),
                cases[i].reference_lifetime.value() * 0.02);
  }
}

TEST(Calibrate, PeukertFitIsReasonableOnRateOnlyData) {
  // Cases generated from a true Peukert battery must be fit almost exactly.
  auto truth = [&](double ma) {
    auto b = make_peukert_battery(milliamp_hours(500.0), 1.25,
                                  milliamps(100.0));
    return b->time_to_empty(milliamps(ma));
  };
  std::vector<CalibrationCase> cases;
  for (double ma : {40.0, 80.0, 160.0, 320.0}) {
    cases.push_back(CalibrationCase{
        "I=" + std::to_string(ma),
        {{milliamps(ma), seconds(1.0)}},
        truth(ma),
        1.0});
  }
  const PeukertFit fit = fit_peukert(cases, milliamp_hours(300.0), 1.1);
  EXPECT_LT(fit.rms_log_error, 0.02);
  EXPECT_NEAR(fit.k, 1.25, 0.05);
}

}  // namespace
}  // namespace deslp::battery
