// Runtime invariant monitors (DESIGN.md §11): expression grammar, severity
// and window semantics, edge-triggered emission, on-update watchers — and
// the two end-to-end guarantees the design leans on: the builtin invariant
// set stays clean (and outcome-neutral) across the whole fault matrix, and
// a deliberately tightened monitor reproduces a bit-identical violation
// stream across replays.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "battery/kibam.h"
#include "core/experiment.h"
#include "core/system.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "task/partition.h"
#include "util/config.h"

namespace deslp::obs {
namespace {

// ---------------------------------------------------------------------------
// Unit layer: MonitorSet over a hand-driven registry and clock.

struct Bench {
  Registry registry;
  MonitorSet monitors;
  double now_s = 0.0;

  void arm() {
    monitors.arm(registry, [this] { return now_s; });
  }
  bool add(const std::string& name, const std::string& expr,
           Severity severity = Severity::kWarn, bool on_update = false) {
    MonitorSpec spec;
    spec.name = name;
    spec.expression = expr;
    spec.severity = severity;
    spec.on_update = on_update;
    return monitors.add(std::move(spec));
  }
};

TEST(MonitorSeverity, ParsesAndNames) {
  EXPECT_EQ(parse_severity("warn"), Severity::kWarn);
  EXPECT_EQ(parse_severity("fail"), Severity::kFail);
  EXPECT_EQ(parse_severity("abort"), Severity::kAbort);
  EXPECT_FALSE(parse_severity("fatal").has_value());
  EXPECT_STREQ(severity_name(Severity::kWarn), "warn");
  EXPECT_STREQ(severity_name(Severity::kFail), "fail");
  EXPECT_STREQ(severity_name(Severity::kAbort), "abort");
}

TEST(MonitorParser, RejectsMalformedExpressions) {
  MonitorSet set;
  const char* kBad[] = {"",       "1 +",       "a.b <",  "(a.b > 1",
                        "rate()", "rate(1+2)", "a.b ? 1", "abs(a.b"};
  for (const char* expr : kBad) {
    MonitorSpec spec;
    spec.name = "bad";
    spec.expression = expr;
    std::string error;
    EXPECT_FALSE(set.add(std::move(spec), &error)) << expr;
    EXPECT_FALSE(error.empty()) << expr;
  }
  EXPECT_EQ(set.size(), 0u);
}

TEST(MonitorSet, ThresholdViolatesAndEdgeTriggers) {
  Bench b;
  auto g = b.registry.gauge("test.latency");
  ASSERT_TRUE(b.add("latency", "test.latency < 5"));
  b.arm();

  g.set(3.0);
  b.now_s = 1.0;
  b.monitors.check(b.now_s);
  EXPECT_EQ(b.monitors.violation_total(), 0);

  g.set(7.0);
  b.now_s = 2.0;
  b.monitors.check(b.now_s);
  b.monitors.check(b.now_s);  // still false: edge-triggered, no re-emit
  ASSERT_EQ(b.monitors.violation_total(), 1);
  const Violation& v = b.monitors.violations()[0];
  EXPECT_EQ(v.monitor, "latency");
  EXPECT_EQ(v.severity, Severity::kWarn);
  EXPECT_DOUBLE_EQ(v.at_s, 2.0);
  EXPECT_NE(v.values.find("test.latency=7"), std::string::npos);

  g.set(2.0);  // recover...
  b.now_s = 3.0;
  b.monitors.check(b.now_s);
  g.set(9.0);  // ...then violate again: second emission
  b.now_s = 4.0;
  b.monitors.check(b.now_s);
  EXPECT_EQ(b.monitors.violation_total(), 2);
  EXPECT_FALSE(b.monitors.failed());  // warn never fails the run
}

TEST(MonitorSet, OnUpdateFiresWithoutCheckpoints) {
  Bench b;
  auto c = b.registry.counter("test.count");
  ASSERT_TRUE(b.add("bounded", "test.count <= 2", Severity::kFail,
                    /*on_update=*/true));
  b.arm();

  c.inc();
  c.inc();
  EXPECT_EQ(b.monitors.violation_total(), 0);
  b.now_s = 7.5;
  c.inc();  // 3 > 2: the slot watcher fires, no check() involved
  ASSERT_EQ(b.monitors.violation_total(), 1);
  EXPECT_DOUBLE_EQ(b.monitors.violations()[0].at_s, 7.5);
  EXPECT_TRUE(b.monitors.failed());
  EXPECT_FALSE(b.monitors.abort_requested());
  EXPECT_GE(b.monitors.checks(), 3);
}

TEST(MonitorSet, WindowSuppressesOutsideItsSpan) {
  Bench b;
  auto g = b.registry.gauge("test.g");
  MonitorSpec spec;
  spec.name = "windowed";
  spec.expression = "test.g < 0";
  spec.window_start_s = 10.0;
  spec.window_end_s = 20.0;
  ASSERT_TRUE(b.monitors.add(std::move(spec)));
  b.arm();

  g.set(1.0);  // expression is false throughout
  b.now_s = 5.0;
  b.monitors.check(b.now_s);  // before the window: dormant
  EXPECT_EQ(b.monitors.violation_total(), 0);
  b.now_s = 15.0;
  b.monitors.check(b.now_s);  // inside: fires
  EXPECT_EQ(b.monitors.violation_total(), 1);
  b.now_s = 25.0;
  b.monitors.check(b.now_s);  // after: dormant again
  EXPECT_EQ(b.monitors.violation_total(), 1);
}

TEST(MonitorSet, RateDeltaAndHwmHistoryOperators) {
  Bench b;
  auto g = b.registry.gauge("test.g");
  ASSERT_TRUE(b.add("never_drops", "delta(test.g) >= 0"));
  ASSERT_TRUE(b.add("slow_rise", "rate(test.g) <= 2"));
  ASSERT_TRUE(b.add("hwm_cap", "hwm(test.g) <= 10"));
  b.arm();

  g.set(1.0);
  b.now_s = 1.0;
  b.monitors.check(b.now_s);  // first eval: rate/delta see "no change yet"
  EXPECT_EQ(b.monitors.violation_total(), 0);

  g.set(2.0);  // +1 over 1 s: delta +1, rate 1 — both fine
  b.now_s = 2.0;
  b.monitors.check(b.now_s);
  EXPECT_EQ(b.monitors.violation_total(), 0);

  g.set(12.0);  // +10 over 1 s: rate 10 > 2, and the hwm cap breaks too
  b.now_s = 3.0;
  b.monitors.check(b.now_s);
  EXPECT_EQ(b.monitors.violation_total(), 2);

  g.set(4.0);  // drop: delta < 0 fires; hwm stays latched at 12
  b.now_s = 4.0;
  b.monitors.check(b.now_s);
  EXPECT_EQ(b.monitors.violation_total(), 3);
  std::vector<std::string> fired;
  for (const auto& v : b.monitors.violations()) fired.push_back(v.monitor);
  EXPECT_EQ(std::count(fired.begin(), fired.end(), "never_drops"), 1);
  EXPECT_EQ(std::count(fired.begin(), fired.end(), "slow_rise"), 1);
  EXPECT_EQ(std::count(fired.begin(), fired.end(), "hwm_cap"), 1);
}

TEST(MonitorSet, MissingMetricAndDivisionByZeroAreIndeterminate) {
  Bench b;
  auto g = b.registry.gauge("test.denominator");
  ASSERT_TRUE(b.add("ghost", "test.absent > 0"));
  ASSERT_TRUE(b.add("ratio", "1 / test.denominator < 10"));
  b.arm();

  b.monitors.check(1.0);  // absent metric, zero denominator: no verdict
  EXPECT_EQ(b.monitors.violation_total(), 0);

  g.set(0.05);  // 1/0.05 = 20 >= 10: the ratio monitor now has a verdict
  b.monitors.check(2.0);
  ASSERT_EQ(b.monitors.violation_total(), 1);
  EXPECT_EQ(b.monitors.violations()[0].monitor, "ratio");
}

TEST(MonitorSet, AbortSeverityRequestsStop) {
  Bench b;
  auto g = b.registry.gauge("test.g");
  ASSERT_TRUE(b.add("hard_stop", "test.g < 1", Severity::kAbort));
  bool stopped = false;
  b.monitors.set_on_abort([&stopped] { stopped = true; });
  b.arm();

  g.set(2.0);
  b.monitors.check(1.0);
  ASSERT_TRUE(stopped);
  EXPECT_TRUE(b.monitors.abort_requested());
  EXPECT_TRUE(b.monitors.failed());
}

TEST(MonitorSet, ViolationStorageIsCappedButCountsEverything) {
  Bench b;
  auto g = b.registry.gauge("test.g");
  ASSERT_TRUE(b.add("flappy", "test.g < 1"));
  b.arm();

  const int kRounds = 300;  // alternate violate/recover past the cap
  for (int i = 0; i < kRounds; ++i) {
    g.set(2.0);
    b.monitors.check(2.0 * i);
    g.set(0.0);
    b.monitors.check(2.0 * i + 1.0);
  }
  EXPECT_EQ(b.monitors.violations().size(), MonitorSet::kMaxViolations);
  EXPECT_EQ(b.monitors.violation_total(), kRounds);
  EXPECT_EQ(b.monitors.dropped_violations(),
            kRounds - static_cast<long long>(MonitorSet::kMaxViolations));
}

// ---------------------------------------------------------------------------
// [monitor] INI parsing.

TEST(MonitorConfig, ParsesSpecsWithDottedSubKeys) {
  const auto cfg = Config::parse(
      "[monitor]\n"
      "checkpoint_s = 25\n"
      "latency = system.frame_latency_s <= 3.0\n"
      "latency.severity = fail\n"
      "latency.window = 10..200\n"
      "latency.on = update\n"
      "latency.node = Node1\n"
      "soc = delta(node.Node1.soc) <= 0\n",
      nullptr);
  ASSERT_TRUE(cfg.has_value());
  std::string error;
  const auto specs = obs::monitor_specs_from_config(*cfg, &error);
  ASSERT_TRUE(specs.has_value()) << error;
  ASSERT_EQ(specs->size(), 2u);
  const auto latency = std::find_if(
      specs->begin(), specs->end(),
      [](const MonitorSpec& s) { return s.name == "latency"; });
  ASSERT_NE(latency, specs->end());
  EXPECT_EQ(latency->expression, "system.frame_latency_s <= 3.0");
  EXPECT_EQ(latency->severity, Severity::kFail);
  EXPECT_DOUBLE_EQ(latency->window_start_s, 10.0);
  EXPECT_DOUBLE_EQ(latency->window_end_s, 200.0);
  EXPECT_TRUE(latency->on_update);
  EXPECT_EQ(latency->node, "Node1");
  EXPECT_DOUBLE_EQ(obs::monitor_checkpoint_from_config(*cfg, 0.0), 25.0);
}

TEST(MonitorConfig, NoSectionYieldsEmptyAndErrorsAreReported) {
  const auto none = Config::parse("[system]\nframes = 1\n", nullptr);
  ASSERT_TRUE(none.has_value());
  std::string error;
  const auto empty = obs::monitor_specs_from_config(*none, &error);
  ASSERT_TRUE(empty.has_value()) << error;
  EXPECT_TRUE(empty->empty());

  const char* kBad[] = {
      "[monitor]\nm = 1 +\n",                     // malformed expression
      "[monitor]\nm = a.b > 0\nm.severity = x\n", // bad severity
      "[monitor]\nm.severity = fail\n",           // sub-key without a base
      "[monitor]\nm = a.b > 0\nm.bogus = 1\n",    // unknown sub-key
      "[monitor]\nm = a.b > 0\nm.window = z..9\n" // bad window
  };
  for (const char* text : kBad) {
    const auto cfg = Config::parse(text, nullptr);
    ASSERT_TRUE(cfg.has_value());
    error.clear();
    EXPECT_FALSE(obs::monitor_specs_from_config(*cfg, &error).has_value())
        << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

}  // namespace
}  // namespace deslp::obs

// ---------------------------------------------------------------------------
// Integration layer: monitors riding a real PipelineSystem run.

namespace deslp::core {
namespace {

struct Shape {
  const char* name;
  int stages;
  bool acks;
  long long rotation;
};

const Shape kShapes[] = {
    {"solo", 1, false, 0},
    {"acks", 2, true, 0},
    {"rotation", 2, false, 50},
};

fault::FaultEvent event(fault::FaultKind kind, int target, double at,
                        double dur, double magnitude = 1.0) {
  return {kind, target, seconds(at), seconds(dur), magnitude};
}

struct Archetype {
  const char* name;
  fault::FaultPlan (*plan)(int stages);
};

// Mirrors tests/fault_matrix_test.cc so the builtin invariants face every
// recovery path the matrix exercises.
const Archetype kArchetypes[] = {
    {"blackout",
     [](int stages) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kLinkBlackout, stages, 60.0, 30.0));
       return p;
     }},
    {"rate_degrade",
     [](int) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kRateDegrade, 0, 30.0, 60.0, 0.25));
       return p;
     }},
    {"burst_loss",
     [](int) {
       fault::FaultPlan p;
       p.seed = 5;
       p.events.push_back(
           event(fault::FaultKind::kBurstLoss, 0, 30.0, 120.0, 0.3));
       return p;
     }},
    {"ack_suppress",
     [](int) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kAckSuppress, 0, 60.0, 20.0));
       return p;
     }},
    {"brownout",
     [](int stages) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kBrownout, stages, 60.0, 30.0));
       return p;
     }},
    {"sudden_death",
     [](int stages) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kSuddenDeath, stages, 90.0, 0.0));
       return p;
     }},
    {"capacity_scale",
     [](int stages) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kCapacityScale, stages, 0.0, 0.0, 0.5));
       return p;
     }},
};

constexpr double kCellMah = 8.0;  // small pack: cells run in seconds

SystemConfig cell_config(const Shape& shape, const fault::FaultPlan& plan) {
  SystemConfig sys;
  sys.cpu = &cpu::itsy_sa1100();
  sys.profile = &atr::itsy_atr_profile();
  sys.link = net::itsy_serial_link();
  sys.battery_factory = [] {
    return battery::make_kibam_battery(
        battery::KibamParams{milliamp_hours(kCellMah), 0.3, 5e-4});
  };
  sys.frame_delay = seconds(2.3);
  sys.max_frames = 3000;
  sys.seed = 42;

  const auto analyses = task::analyze_all_partitions(
      *sys.profile, shape.stages, *sys.cpu, sys.link, sys.frame_delay);
  const int best = task::best_partition_index(analyses);
  EXPECT_GE(best, 0);
  const auto& a = analyses[static_cast<std::size_t>(best)];
  sys.partition = a.partition;
  for (const auto& s : a.stages) {
    const int lv = std::min(s.min_level + 1, sys.cpu->level_count() - 1);
    sys.stage_levels.push_back({lv, 0, 0});
  }
  sys.use_acks = shape.acks;
  sys.rotation_period = shape.rotation;
  sys.migrated_levels = {sys.cpu->top_level(), 0, 0};
  sys.faults = plan;
  return sys;
}

// Tentpole guarantee #1: the builtin invariant set is clean across the
// whole fault matrix — and arming it (registry + watchers + checkpoint
// events) does not perturb the simulation outcome by one bit.
class BuiltinInvariants : public ::testing::TestWithParam<int> {};

TEST_P(BuiltinInvariants, FaultMatrixRunsCleanAndUnperturbed) {
  const Archetype& arch = kArchetypes[static_cast<std::size_t>(GetParam())];
  for (const Shape& shape : kShapes) {
    SCOPED_TRACE(std::string(arch.name) + " x " + shape.name);
    const fault::FaultPlan plan = arch.plan(shape.stages);

    PipelineSystem plain_sys(cell_config(shape, plan));
    const RunResult plain = plain_sys.run();

    obs::Registry registry;
    SystemConfig armed_cfg = cell_config(shape, plan);
    armed_cfg.metrics = &registry;  // builtins auto-arm: fault plan present
    PipelineSystem armed_sys(std::move(armed_cfg));
    const RunResult armed = armed_sys.run();

    EXPECT_GT(armed.monitor_checks, 0);
    EXPECT_EQ(armed.violations_total, 0)
        << (armed.violations.empty() ? "" : armed.violations[0].monitor);
    EXPECT_FALSE(armed.monitors_failed);

    // Read-only observation: outcomes match the unmonitored run exactly.
    EXPECT_EQ(plain.frames_sent, armed.frames_sent);
    EXPECT_EQ(plain.frames_completed, armed.frames_completed);
    EXPECT_EQ(plain.frames_lost, armed.frames_lost);
    EXPECT_EQ(plain.fault_injections, armed.fault_injections);
    EXPECT_DOUBLE_EQ(plain.sim_end.value(), armed.sim_end.value());
    ASSERT_EQ(plain.nodes.size(), armed.nodes.size());
    for (std::size_t i = 0; i < plain.nodes.size(); ++i) {
      EXPECT_DOUBLE_EQ(plain.nodes[i].charge_used.value(),
                       armed.nodes[i].charge_used.value());
      EXPECT_DOUBLE_EQ(plain.nodes[i].final_soc, armed.nodes[i].final_soc);
      EXPECT_EQ(plain.nodes[i].died, armed.nodes[i].died);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Archetypes, BuiltinInvariants,
                         ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(
                               kArchetypes[static_cast<std::size_t>(
                                               info.param)]
                                   .name);
                         });

// Tentpole guarantee #2: a deliberately tightened monitor fires, marks the
// run failed, and replays to a bit-identical violation stream.
TEST(MonitorReplay, TightenedThroughputMonitorIsDeterministic) {
  const Shape shape{"acks", 2, true, 0};
  const fault::FaultPlan plan = kArchetypes[0].plan(shape.stages);  // blackout

  const auto run_once = [&] {
    obs::Registry registry;
    SystemConfig sys = cell_config(shape, plan);
    sys.metrics = &registry;
    {
      obs::MonitorSpec spec;
      // The blackout starves completions, so checkpoint throughput drops
      // under 0.1 frames/s inside the outage — a guaranteed violation.
      spec.name = "throughput_floor";
      spec.expression = "rate(system.frames_completed) >= 0.1";
      spec.severity = obs::Severity::kFail;
      spec.window_start_s = 30.0;  // skip the first-eval warm-up
      sys.monitors.push_back(std::move(spec));
    }
    sys.monitor_checkpoint_s = 10.0;
    PipelineSystem system(std::move(sys));
    return system.run();
  };

  const RunResult a = run_once();
  const RunResult b = run_once();

  ASSERT_GE(a.violations_total, 1);
  EXPECT_TRUE(a.monitors_failed);
  EXPECT_EQ(a.violations_total, b.violations_total);
  EXPECT_EQ(a.monitor_checks, b.monitor_checks);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].monitor, b.violations[i].monitor);
    EXPECT_EQ(a.violations[i].severity, b.violations[i].severity);
    EXPECT_DOUBLE_EQ(a.violations[i].at_s, b.violations[i].at_s);
    EXPECT_EQ(a.violations[i].values, b.violations[i].values);
  }
}

}  // namespace
}  // namespace deslp::core
