#include <gtest/gtest.h>

#include "cpu/cpu.h"

namespace deslp::cpu {
namespace {

TEST(Sa1100, ElevenLevelsWithPaperEndpoints) {
  const CpuSpec& c = itsy_sa1100();
  EXPECT_EQ(c.level_count(), 11);
  EXPECT_NEAR(to_megahertz(c.level(0).frequency), 59.0, 1e-9);
  EXPECT_NEAR(to_megahertz(c.level(10).frequency), 206.4, 1e-9);
  EXPECT_DOUBLE_EQ(c.level(0).voltage.value(), 0.919);
  EXPECT_DOUBLE_EQ(c.level(10).voltage.value(), 1.393);
}

TEST(Sa1100, FrequenciesStrictlyIncreasing) {
  const CpuSpec& c = itsy_sa1100();
  for (int i = 1; i < c.level_count(); ++i)
    EXPECT_GT(c.level(i).frequency, c.level(i - 1).frequency);
}

TEST(Sa1100, LevelLookupByMhz) {
  EXPECT_EQ(sa1100_level_mhz(59.0), 0);
  EXPECT_EQ(sa1100_level_mhz(73.7), 1);
  EXPECT_EQ(sa1100_level_mhz(103.2), 3);
  EXPECT_EQ(sa1100_level_mhz(118.0), 4);
  EXPECT_EQ(sa1100_level_mhz(206.4), 10);
}

// The current model must hit the anchors the paper states outright (§6.3,
// §6.5, §4.4); tolerances are a couple of mA.
TEST(Sa1100, CurrentModelMatchesPaperAnchors) {
  const CpuSpec& c = itsy_sa1100();
  EXPECT_NEAR(to_milliamps(c.current(Mode::kComm, 10)), 110.0, 2.0);
  EXPECT_NEAR(to_milliamps(c.current(Mode::kComm, 0)), 40.0, 2.0);
  EXPECT_NEAR(to_milliamps(c.current(Mode::kComm, 3)), 55.0, 2.5);
  EXPECT_NEAR(to_milliamps(c.current(Mode::kComp, 10)), 130.0, 2.0);
  // "Three curves range from 30 mA to 130 mA".
  EXPECT_NEAR(to_milliamps(c.current(Mode::kIdle, 0)), 30.0, 2.0);
}

TEST(Sa1100, ComputationDominates) {
  const CpuSpec& c = itsy_sa1100();
  for (int i = 0; i < c.level_count(); ++i) {
    EXPECT_GT(c.current(Mode::kComp, i), c.current(Mode::kComm, i));
    EXPECT_GT(c.current(Mode::kComm, i), c.current(Mode::kIdle, i));
  }
}

TEST(Sa1100, CurrentsIncreaseWithLevel) {
  const CpuSpec& c = itsy_sa1100();
  for (Mode m : {Mode::kIdle, Mode::kComm, Mode::kComp})
    for (int i = 1; i < c.level_count(); ++i)
      EXPECT_GT(c.current(m, i), c.current(m, i - 1));
}

TEST(CpuSpec, TimeScalesLinearlyWithClock) {
  const CpuSpec& c = itsy_sa1100();
  const Cycles w = work(megahertz(206.4), seconds(1.1));
  EXPECT_NEAR(c.time_for(w, 10).value(), 1.1, 1e-12);
  EXPECT_NEAR(c.time_for(w, 3).value(), 1.1 * 206.4 / 103.2, 1e-12);
  EXPECT_NEAR(c.time_for(w, 0).value(), 1.1 * 206.4 / 59.0, 1e-12);
}

TEST(CpuSpec, WorkInInvertsTimeFor) {
  const CpuSpec& c = itsy_sa1100();
  const Cycles w = c.work_in(seconds(2.0), 4);
  EXPECT_NEAR(c.time_for(w, 4).value(), 2.0, 1e-12);
}

TEST(CpuSpec, MinLevelForFrequency) {
  const CpuSpec& c = itsy_sa1100();
  EXPECT_EQ(c.min_level_for_frequency(megahertz(1.0)), 0);
  EXPECT_EQ(c.min_level_for_frequency(megahertz(59.0)), 0);
  EXPECT_EQ(c.min_level_for_frequency(megahertz(59.1)), 1);
  EXPECT_EQ(c.min_level_for_frequency(megahertz(206.4)), 10);
  EXPECT_EQ(c.min_level_for_frequency(megahertz(206.5)), -1);
}

TEST(CpuSpec, MinLevelForWorkAndBudget) {
  const CpuSpec& c = itsy_sa1100();
  const Cycles w = work(megahertz(103.2), seconds(1.0));
  EXPECT_EQ(c.min_level_for(w, seconds(1.0)), 3);      // exactly 103.2 MHz
  EXPECT_EQ(c.min_level_for(w, seconds(10.0)), 0);     // lots of slack
  EXPECT_EQ(c.min_level_for(w, seconds(0.4)), -1);     // needs 258 MHz
}

TEST(CpuSpec, RequiredFrequencyReportsInfeasibleDemands) {
  // Fig. 8 scheme 3: the paper reports Node1 would need ~380 MHz.
  const Hertz f = CpuSpec::required_frequency(
      work(megahertz(206.4), seconds(0.69)), seconds(0.36));
  EXPECT_NEAR(to_megahertz(f), 206.4 * 0.69 / 0.36, 1e-6);
  EXPECT_GT(f, itsy_sa1100().max_frequency());
}

TEST(CpuSpec, DvsSwitchLatencyIsSmall) {
  EXPECT_GT(itsy_sa1100().dvs_switch_latency().value(), 0.0);
  EXPECT_LT(itsy_sa1100().dvs_switch_latency().value(), 0.001);
}

}  // namespace
}  // namespace deslp::cpu
