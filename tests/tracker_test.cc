#include <gtest/gtest.h>

#include <cmath>

#include "atr/tracker.h"
#include "util/rng.h"

namespace deslp::atr {
namespace {

/// Synthesize one frame's AtrResult directly (unit tests of the tracker
/// shouldn't depend on the detector's noise behaviour; the end-to-end test
/// below runs the real pipeline).
AtrResult observations(
    const std::vector<std::tuple<int, int, int, double>>& targets) {
  AtrResult r;
  for (const auto& [x, y, tmpl, dist] : targets) {
    AtrTarget t;
    t.detection = {x, y, 1.0f};
    t.match.template_id = tmpl;
    t.match.score = 1.0 / (dist * dist);
    t.range.distance = dist;
    t.range.confidence = 1.0;
    r.targets.push_back(t);
  }
  return r;
}

TEST(Tracker, SingleMovingTargetKeepsOneTrack) {
  Tracker tracker;
  for (int f = 0; f < 10; ++f)
    tracker.update(observations({{40 + 3 * f, 50 + 2 * f, 0, 1.2}}));
  ASSERT_EQ(tracker.tracks().size(), 1u);
  const Track& t = tracker.tracks()[0];
  EXPECT_EQ(t.id, 0);
  EXPECT_EQ(tracker.tracks_created(), 1);
  EXPECT_EQ(t.hits, 10);
  // Position tracks the motion and the velocity estimate converges.
  EXPECT_NEAR(t.x, 40 + 3 * 9, 3.0);
  EXPECT_NEAR(t.y, 50 + 2 * 9, 3.0);
  EXPECT_NEAR(t.vx, 3.0, 1.0);
  EXPECT_NEAR(t.vy, 2.0, 1.0);
}

TEST(Tracker, TwoSeparatedTargetsKeepDistinctTracks) {
  Tracker tracker;
  for (int f = 0; f < 8; ++f)
    tracker.update(observations(
        {{30 + 2 * f, 30, 0, 1.0}, {100 - 2 * f, 100, 1, 1.5}}));
  ASSERT_EQ(tracker.tracks().size(), 2u);
  EXPECT_EQ(tracker.tracks_created(), 2);
  // Template identity is preserved per track.
  int templates[2] = {tracker.tracks()[0].template_id,
                      tracker.tracks()[1].template_id};
  EXPECT_NE(templates[0], templates[1]);
}

TEST(Tracker, TemplateIdentityGatesAssociation) {
  Tracker tracker;
  tracker.update(observations({{50, 50, 0, 1.0}}));
  // Same position, different template: must spawn a new track, not extend.
  tracker.update(observations({{50, 50, 1, 1.0}}));
  EXPECT_EQ(tracker.tracks_created(), 2);
}

TEST(Tracker, MissingTargetCoastsThenRetires) {
  TrackerOptions opt;
  opt.max_missed = 3;
  Tracker tracker(opt);
  for (int f = 0; f < 5; ++f)
    tracker.update(observations({{40 + 3 * f, 50, 0, 1.0}}));
  ASSERT_EQ(tracker.tracks().size(), 1u);
  // Target vanishes: the track coasts for max_missed frames, then retires.
  tracker.update(observations({}));
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].missed, 1);
  const double coasted_x = tracker.tracks()[0].x;
  EXPECT_GT(coasted_x, 40 + 3 * 4);  // kept moving on its velocity
  tracker.update(observations({}));
  tracker.update(observations({}));
  EXPECT_TRUE(tracker.tracks().empty());
  EXPECT_EQ(tracker.tracks_retired(), 1);
}

TEST(Tracker, ReappearingWithinGateResumesTrack) {
  TrackerOptions opt;
  opt.max_missed = 4;
  Tracker tracker(opt);
  for (int f = 0; f < 5; ++f)
    tracker.update(observations({{40 + 3 * f, 50, 0, 1.0}}));
  tracker.update(observations({}));  // one dropped frame
  // Reappears where the motion predicts (x ~ 40+3*6).
  tracker.update(observations({{40 + 3 * 6, 50, 0, 1.0}}));
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].id, 0);
  EXPECT_EQ(tracker.tracks_created(), 1);
  EXPECT_EQ(tracker.tracks()[0].missed, 0);
}

TEST(Tracker, ConfirmationThreshold) {
  TrackerOptions opt;
  opt.confirm_hits = 3;
  Tracker tracker(opt);
  tracker.update(observations({{40, 50, 0, 1.0}}));
  EXPECT_TRUE(tracker.confirmed().empty());
  tracker.update(observations({{41, 50, 0, 1.0}}));
  EXPECT_TRUE(tracker.confirmed().empty());
  tracker.update(observations({{42, 50, 0, 1.0}}));
  EXPECT_EQ(tracker.confirmed().size(), 1u);
}

TEST(Tracker, DistanceIsSmoothed) {
  TrackerOptions opt;
  opt.distance_alpha = 0.3;
  Tracker tracker(opt);
  tracker.update(observations({{40, 50, 0, 1.0}}));
  tracker.update(observations({{40, 50, 0, 2.0}}));  // noisy jump
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_NEAR(tracker.tracks()[0].distance, 0.7 * 1.0 + 0.3 * 2.0, 1e-9);
}

TEST(Tracker, EndToEndOnRenderedFrames) {
  // The full loop: render a moving target, run the real ATR per frame,
  // feed the tracker. The track follows the ground-truth motion.
  Rng rng(77);
  Tracker tracker;
  const int frames = 8;
  for (int f = 0; f < frames; ++f) {
    SceneSpec spec;
    spec.noise_sigma = 0.03f;
    spec.targets = {{30 + 6 * f, 60, 0, 1.0}};
    const AtrResult result = run_atr(render_scene(spec, rng));
    tracker.update(result);
  }
  ASSERT_EQ(tracker.tracks().size(), 1u);
  const Track& t = tracker.tracks()[0];
  EXPECT_EQ(t.template_id, 0);
  EXPECT_GE(t.hits, frames - 1);  // at most one missed detection tolerated
  EXPECT_NEAR(t.x, 30 + 6 * (frames - 1), 5.0);
  EXPECT_NEAR(t.vx, 6.0, 2.0);
  EXPECT_NEAR(t.distance, 1.0, 0.25);
}

}  // namespace
}  // namespace deslp::atr
