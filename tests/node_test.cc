// Tests for the Node building blocks: battery-accurate busy/send/recv and
// the death semantics (the node dies at the exact instant its battery
// empties, mid-activity or mid-wait).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "battery/battery.h"
#include "core/node.h"
#include "net/hub.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace deslp::core {
namespace {

struct Fixture {
  sim::Engine engine;
  sim::Trace trace;
  net::Hub hub{engine, net::itsy_serial_link()};
  sim::Channel<net::Delivery>* host_mailbox = nullptr;
  std::unique_ptr<Node> node;

  explicit Fixture(double battery_mah = 1000.0,
                   bool model_switch_cost = false) {
    host_mailbox = &hub.attach(net::kHostAddress);
    Node::Config cfg;
    cfg.address = 1;
    cfg.name = "Node1";
    cfg.cpu = &cpu::itsy_sa1100();
    cfg.model_dvs_switch_cost = model_switch_cost;
    node = std::make_unique<Node>(
        engine, hub, trace, cfg,
        battery::make_ideal_battery(milliamp_hours(battery_mah)));
  }
};

TEST(Node, BusyDrainsBatteryAndAdvancesTime) {
  Fixture f;
  bool ok = false;
  f.engine.spawn([](Fixture& fx, bool& result) -> sim::Task {
    result = co_await fx.node->busy(cpu::Mode::kComp, 10, hours(1.0),
                                    "PROC");
  }(f, ok));
  f.engine.run();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(f.node->alive());
  EXPECT_NEAR(sim::to_seconds(f.engine.now()).value(), 3600.0, 1e-6);
  // Ideal battery: exactly I_comp(top) * 1 h drawn.
  const double expected_mah =
      to_milliamps(cpu::itsy_sa1100().current(cpu::Mode::kComp, 10));
  EXPECT_NEAR(to_milliamp_hours(f.node->monitor().total_charge()),
              expected_mah, 0.01);
}

TEST(Node, BusyKillsNodeAtExactBatteryDeath) {
  Fixture f(/*battery_mah=*/130.0);  // dies in ~1 h at 130 mA comp current
  bool ok = true;
  f.engine.spawn([](Fixture& fx, bool& result) -> sim::Task {
    result = co_await fx.node->busy(cpu::Mode::kComp, 10, hours(10.0),
                                    "PROC");
  }(f, ok));
  f.engine.run();
  EXPECT_FALSE(ok);
  EXPECT_FALSE(f.node->alive());
  const double death_h = to_hours(sim::to_seconds(f.node->death_time()));
  const double expected_h =
      130.0 /
      to_milliamps(cpu::itsy_sa1100().current(cpu::Mode::kComp, 10));
  EXPECT_NEAR(death_h, expected_h, 1e-6);
  EXPECT_TRUE(f.hub.failed(1));
  // Subsequent operations fail fast.
  bool second = true;
  f.engine.spawn([](Fixture& fx, bool& result) -> sim::Task {
    result = co_await fx.node->busy(cpu::Mode::kIdle, 0, seconds(1.0), "X");
  }(f, second));
  f.engine.run();
  EXPECT_FALSE(second);
}

TEST(Node, SendDeliversToDestinationMailbox) {
  Fixture f;
  bool sent = false;
  std::optional<net::Delivery> got;
  f.engine.spawn([](Fixture& fx, bool& result) -> sim::Task {
    net::Message m;
    m.dst = net::kHostAddress;
    m.kind = net::MsgKind::kData;
    m.frame = 3;
    m.size = kilobytes(1.0);
    result = co_await fx.node->send(m, 0);
  }(f, sent));
  f.engine.spawn([](Fixture& fx,
                    std::optional<net::Delivery>& out) -> sim::Task {
    out = co_await fx.host_mailbox->recv();
  }(f, got));
  f.engine.run();
  EXPECT_TRUE(sent);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->msg.frame, 3);
  EXPECT_EQ(got->msg.src, 1);  // stamped by the node
  // The node was busy in comm mode for the wire time.
  EXPECT_NEAR(f.node->monitor().totals(cpu::Mode::kComm).time.value(),
              got->wire_time.value(), 1e-9);
}

TEST(Node, DyingSenderDoesNotDeliver) {
  // Battery with barely any charge: the send cannot complete, so nothing
  // must arrive at the destination.
  Fixture f(/*battery_mah=*/0.001);
  bool sent = true;
  std::optional<net::Delivery> got;
  f.engine.spawn([](Fixture& fx, bool& result) -> sim::Task {
    net::Message m;
    m.dst = net::kHostAddress;
    m.size = kilobytes(10.0);
    result = co_await fx.node->send(m, 10);
  }(f, sent));
  f.engine.spawn([](Fixture& fx,
                    std::optional<net::Delivery>& out) -> sim::Task {
    out = co_await fx.host_mailbox->recv();
  }(f, got));
  f.engine.run();
  EXPECT_FALSE(sent);
  EXPECT_FALSE(f.node->alive());
  EXPECT_FALSE(got.has_value());
}

TEST(Node, RecvWaitsIdlesAndReadsWire) {
  Fixture f;
  std::optional<net::Message> got;
  f.engine.spawn([](Fixture& fx,
                    std::optional<net::Message>& out) -> sim::Task {
    out = co_await fx.node->recv(/*idle_level=*/0, /*comm_level=*/0);
  }(f, got));
  // Host sends after 10 s of idling.
  f.engine.schedule_at(sim::Time{10'000'000'000}, [&f] {
    net::Message m;
    m.src = net::kHostAddress;
    m.dst = 1;
    m.kind = net::MsgKind::kData;
    m.frame = 42;
    m.size = kilobytes(10.1);
    f.hub.begin_send(m);
  });
  f.engine.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frame, 42);
  // ~10 s of idle current at level 0 was charged.
  EXPECT_NEAR(f.node->monitor().totals(cpu::Mode::kIdle).time.value(), 10.0,
              0.1);
  // And the wire time in comm mode (1.03-1.14 s for 10.1 KB).
  const double comm = f.node->monitor().totals(cpu::Mode::kComm).time.value();
  EXPECT_GT(comm, 1.0);
  EXPECT_LT(comm, 1.2);
}

TEST(Node, RecvTimeoutReturnsNullopt) {
  Fixture f;
  std::optional<net::Message> got;
  bool finished = false;
  f.engine.spawn([](Fixture& fx, std::optional<net::Message>& out,
                    bool& done) -> sim::Task {
    out = co_await fx.node->recv(0, 0, seconds(5.0));
    done = true;
  }(f, got, finished));
  f.engine.run();
  EXPECT_TRUE(finished);
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(f.node->alive());
  EXPECT_NEAR(sim::to_seconds(f.engine.now()).value(), 5.0, 1e-6);
  EXPECT_NEAR(f.node->monitor().totals(cpu::Mode::kIdle).time.value(), 5.0,
              1e-6);
}

TEST(Node, IdleDeathWatchKillsWaitingNode) {
  // 30 mA idle current, 0.03 mAh battery -> dies after ~3.6 s of waiting.
  Fixture f(/*battery_mah=*/0.03);
  std::optional<net::Message> got;
  bool finished = false;
  f.engine.spawn([](Fixture& fx, std::optional<net::Message>& out,
                    bool& done) -> sim::Task {
    out = co_await fx.node->recv(0, 0);
    done = true;
  }(f, got, finished));
  f.engine.run();
  EXPECT_TRUE(finished);
  EXPECT_FALSE(got.has_value());
  EXPECT_FALSE(f.node->alive());
  const double idle_ma =
      to_milliamps(cpu::itsy_sa1100().current(cpu::Mode::kIdle, 0));
  EXPECT_NEAR(sim::to_seconds(f.node->death_time()).value(),
              0.03 / idle_ma * 3600.0, 1e-3);
}

TEST(Node, IdleHelperAccountsIdleTime) {
  Fixture f;
  bool ok = false;
  f.engine.spawn([](Fixture& fx, bool& result) -> sim::Task {
    result = co_await fx.node->idle(0, seconds(7.5));
  }(f, ok));
  f.engine.run();
  EXPECT_TRUE(ok);
  EXPECT_NEAR(f.node->monitor().totals(cpu::Mode::kIdle).time.value(), 7.5,
              1e-9);
}

TEST(Node, DvsSwitchCostAccountedOnLevelChange) {
  Fixture f(1000.0, /*model_switch_cost=*/true);
  f.engine.spawn([](Fixture& fx) -> sim::Task {
    (void)co_await fx.node->busy(cpu::Mode::kComp, 10, seconds(1.0), "A");
    (void)co_await fx.node->busy(cpu::Mode::kComp, 10, seconds(1.0), "B");
    (void)co_await fx.node->busy(cpu::Mode::kComp, 0, seconds(1.0), "C");
  }(f));
  f.engine.run();
  // First busy: no prior level -> no cost; second: same level -> no cost;
  // third: one switch -> one PLL relock.
  const double switch_s = cpu::itsy_sa1100().dvs_switch_latency().value();
  EXPECT_NEAR(f.node->monitor().total_time().value(), 3.0 + switch_s, 1e-9);
}

}  // namespace
}  // namespace deslp::core
