#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/nelder_mead.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace deslp {
namespace {

// --- units ------------------------------------------------------------------

TEST(Units, ConstructionAndReadout) {
  EXPECT_DOUBLE_EQ(hours(2.0).value(), 7200.0);
  EXPECT_DOUBLE_EQ(to_hours(seconds(7200.0)), 2.0);
  EXPECT_DOUBLE_EQ(milliseconds(50.0).value(), 0.05);
  EXPECT_DOUBLE_EQ(to_megahertz(megahertz(206.4)), 206.4);
  EXPECT_DOUBLE_EQ(to_milliamps(milliamps(110.0)), 110.0);
  EXPECT_DOUBLE_EQ(to_milliamp_hours(milliamp_hours(930.0)), 930.0);
}

TEST(Units, Arithmetic) {
  EXPECT_EQ(seconds(1.0) + seconds(2.0), seconds(3.0));
  EXPECT_EQ(seconds(5.0) - seconds(2.0), seconds(3.0));
  EXPECT_EQ(seconds(2.0) * 3.0, seconds(6.0));
  EXPECT_EQ(3.0 * seconds(2.0), seconds(6.0));
  EXPECT_DOUBLE_EQ(seconds(6.0) / seconds(2.0), 3.0);
  EXPECT_LT(seconds(1.0), seconds(2.0));
}

TEST(Units, CrossUnitOperations) {
  EXPECT_DOUBLE_EQ(electrical_power(volts(4.0), milliamps(100.0)).value(),
                   0.4);
  EXPECT_DOUBLE_EQ(charge(milliamps(100.0), hours(1.0)).value(), 360.0);
  EXPECT_DOUBLE_EQ(to_milliamp_hours(charge(milliamps(100.0), hours(1.0))),
                   100.0);
  EXPECT_DOUBLE_EQ(
      discharge_time(milliamp_hours(100.0), milliamps(100.0)).value(),
      3600.0);
  // 1.1 s at 206.4 MHz is 227.04 Mcycles; back at half clock it takes 2.2 s.
  const Cycles w = work(megahertz(206.4), seconds(1.1));
  EXPECT_NEAR(w.value(), 227.04e6, 1.0);
  EXPECT_NEAR(execution_time(w, megahertz(103.2)).value(), 2.2, 1e-12);
}

TEST(Units, BytesAndTransferTime) {
  EXPECT_EQ(kilobytes(10.0).count(), 10240);
  EXPECT_DOUBLE_EQ(to_kilobytes(bytes(5120)), 5.0);
  EXPECT_EQ(bytes(100) + bytes(28), bytes(128));
  // 10 KB at 80 Kbps: 81920 bits / 80000 bps = 1.024 s.
  EXPECT_NEAR(
      transfer_time(kilobytes(10.0), kilobits_per_second(80.0)).value(),
      1.024, 1e-9);
}

// --- table -------------------------------------------------------------------

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.50"});
  t.add_row({"b", "20.00"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  // Numeric cells right-align.
  EXPECT_NE(out.find("|  1.50 |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::percent(1.45), "145%");
  EXPECT_EQ(Table::percent(0.155, 1), "15.5%");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_NE(t.render().find("| x |"), std::string::npos);
}

// --- csv ----------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.add_row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

// --- rng -----------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(0.05, 0.1);
    EXPECT_GE(v, 0.05);
    EXPECT_LT(v, 0.1);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BelowCoversRange) {
  Rng r(3);
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) seen[r.below(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

// --- stats ----------------------------------------------------------------------

TEST(Stats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, WeightedMean) {
  RunningStats s;
  s.add_weighted(10.0, 1.0);
  s.add_weighted(20.0, 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 17.5);
  EXPECT_DOUBLE_EQ(s.total_weight(), 4.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, RmsRelativeError) {
  EXPECT_DOUBLE_EQ(rms_relative_error({10.0, 10.0}, {10.0, 10.0}), 0.0);
  EXPECT_NEAR(rms_relative_error({10.0}, {11.0}), 0.1, 1e-12);
}

// --- flags -----------------------------------------------------------------------

TEST(Flags, ParsesAllKinds) {
  Flags f;
  f.add_string("name", "default", "a string");
  f.add_double("rate", 1.5, "a double");
  f.add_int("count", 10, "an int");
  f.add_bool("verbose", false, "a bool");
  const char* argv[] = {"prog",       "--name=x",  "--rate", "2.5",
                        "--count=42", "--verbose", "pos1"};
  ASSERT_TRUE(f.parse(7, argv));
  EXPECT_EQ(f.get_string("name"), "x");
  EXPECT_DOUBLE_EQ(f.get_double("rate"), 2.5);
  EXPECT_EQ(f.get_int("count"), 42);
  EXPECT_TRUE(f.get_bool("verbose"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
}

TEST(Flags, DefaultsSurviveNoArgs) {
  Flags f;
  f.add_double("rate", 1.5, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, argv));
  EXPECT_DOUBLE_EQ(f.get_double("rate"), 1.5);
}

TEST(Flags, NegatedBool) {
  Flags f;
  f.add_bool("feature", true, "");
  const char* argv[] = {"prog", "--no-feature"};
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_FALSE(f.get_bool("feature"));
}

TEST(Flags, RejectsUnknownFlag) {
  Flags f;
  f.add_bool("x", false, "");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, RejectsBadNumber) {
  Flags f;
  f.add_double("rate", 1.0, "");
  const char* argv[] = {"prog", "--rate=abc"};
  EXPECT_FALSE(f.parse(2, argv));
}


// --- log -------------------------------------------------------------------------

TEST(Log, SinkCapturesMessagesAtOrAboveLevel) {
  std::vector<std::pair<log::Level, std::string>> captured;
  log::set_sink([&](log::Level lvl, std::string_view msg) {
    captured.emplace_back(lvl, std::string(msg));
  });
  log::set_level(log::Level::kInfo);
  log::debug("dropped ", 1);
  log::info("kept ", 42);
  log::warn("also kept");
  log::set_sink(nullptr);
  log::set_level(log::Level::kWarn);  // restore defaults
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "kept 42");
  EXPECT_EQ(captured[0].first, log::Level::kInfo);
  EXPECT_EQ(captured[1].second, "also kept");
}

TEST(Log, OffLevelSilencesEverything) {
  int count = 0;
  log::set_sink([&](log::Level, std::string_view) { ++count; });
  log::set_level(log::Level::kOff);
  log::error("not even errors");
  log::set_sink(nullptr);
  log::set_level(log::Level::kWarn);
  EXPECT_EQ(count, 0);
}

// --- nelder-mead --------------------------------------------------------------------

TEST(NelderMead, MinimisesQuadratic) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  const auto r = nelder_mead(f, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_NEAR(r.value, 0.0, 1e-7);
}

TEST(NelderMead, MinimisesRosenbrock) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_iterations = 10000;
  const auto r = nelder_mead(f, {-1.2, 1.0}, opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional) {
  auto f = [](const std::vector<double>& x) {
    return std::cosh(x[0] - 2.0);
  };
  const auto r = nelder_mead(f, {10.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-4);
}

TEST(NelderMead, Deterministic) {
  auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + 0.5 * x[1] * x[1];
  };
  const auto a = nelder_mead(f, {5.0, -7.0});
  const auto b = nelder_mead(f, {5.0, -7.0});
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.x, b.x);
}

}  // namespace
}  // namespace deslp
