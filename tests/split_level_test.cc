#include <gtest/gtest.h>

#include <vector>
#include "dvs/split_level.h"

namespace deslp::dvs {
namespace {

using cpu::itsy_sa1100;

TEST(SplitLevel, FillsBudgetExactlyBetweenLevels) {
  const cpu::CpuSpec& c = itsy_sa1100();
  // Demand 93.1 MHz (the partitioned Node2): between 88.5 and 103.2.
  const Seconds budget = seconds(2.08);
  const Cycles work = deslp::work(megahertz(93.1), budget);
  const SplitSchedule s = split_level_schedule(c, work, budget);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.level_lo, cpu::sa1100_level_mhz(88.5));
  EXPECT_EQ(s.level_hi, cpu::sa1100_level_mhz(103.2));
  EXPECT_NEAR((s.time_lo + s.time_hi).value(), budget.value(), 1e-9);
  EXPECT_NEAR((s.cycles_lo + s.cycles_hi).value(), work.value(), 1.0);
  EXPECT_GT(s.time_lo.value(), 0.0);
  EXPECT_GT(s.time_hi.value(), 0.0);
}

TEST(SplitLevel, ExactTableFrequencyDegeneratesToSingleLevel) {
  const cpu::CpuSpec& c = itsy_sa1100();
  const Seconds budget = seconds(1.0);
  const Cycles work = deslp::work(megahertz(103.2), budget);
  const SplitSchedule s = split_level_schedule(c, work, budget);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.level_lo, s.level_hi);
  EXPECT_EQ(s.level_hi, cpu::sa1100_level_mhz(103.2));
  EXPECT_NEAR(s.time_hi.value(), 1.0, 1e-9);
  EXPECT_NEAR(s.time_lo.value(), 0.0, 1e-12);
}

TEST(SplitLevel, BelowBottomLevelRunsAtBottomWithSlack) {
  const cpu::CpuSpec& c = itsy_sa1100();
  const Seconds budget = seconds(2.0);
  const Cycles work = deslp::work(megahertz(30.0), budget);  // needs 30 MHz
  const SplitSchedule s = split_level_schedule(c, work, budget);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.level_lo, 0);
  EXPECT_EQ(s.level_hi, 0);
  EXPECT_LT(s.time_hi.value(), budget.value());  // slack remains
}

TEST(SplitLevel, InfeasibleDemandReported) {
  const cpu::CpuSpec& c = itsy_sa1100();
  const Cycles work = deslp::work(megahertz(300.0), seconds(1.0));
  EXPECT_FALSE(split_level_schedule(c, work, seconds(1.0)).feasible);
}

TEST(SplitLevel, StretchingNeverWinsAcrossEqualVoltageGaps) {
  // Several adjacent SA-1100 levels share a voltage (88.5/103.2 at
  // 1.067 V, 132.7/147.5 at 1.156 V). Across those gaps, stretching buys
  // no dynamic saving at all while keeping the base platform current
  // flowing longer than rounding up + idling, so the split can never
  // draw less charge. Notably, the paper's partitioned Node2 demand
  // (93.1 MHz) falls in exactly such a gap.
  const cpu::CpuSpec& c = itsy_sa1100();
  for (double mhz : {93.1, 100.0, 140.0}) {
    const Seconds budget = seconds(2.0);
    const Cycles work = deslp::work(megahertz(mhz), budget);
    const SplitSchedule s = split_level_schedule(c, work, budget);
    ASSERT_TRUE(s.feasible) << mhz;
    ASSERT_EQ(c.level(s.level_lo).voltage, c.level(s.level_hi).voltage)
        << mhz;
    const double split = split_compute_charge(c, s).value();
    const double single =
        single_level_compute_charge(c, work, budget, 0).value();
    EXPECT_GE(split, single * (1.0 - 1e-9)) << mhz << " MHz";
  }
}

TEST(SplitLevel, OutcomeIsMarginalEitherWayOnItsy) {
  // Where the voltage does drop (e.g. 162.2 V=1.215 vs 176.9 V=1.304) the
  // split wins a little; where it does not, race-to-idle wins a little.
  // Across the whole demand range the net effect stays within a few
  // percent — the "CPU-centric DVS claims vs attainable savings" gap of
  // the paper's §1, at the granularity of one scheduling decision.
  const cpu::CpuSpec& c = itsy_sa1100();
  for (double mhz = 62.0; mhz < 206.0; mhz += 5.7) {
    const Seconds budget = seconds(2.0);
    const Cycles work = deslp::work(megahertz(mhz), budget);
    const SplitSchedule s = split_level_schedule(c, work, budget);
    ASSERT_TRUE(s.feasible) << mhz;
    const double split = split_compute_charge(c, s).value();
    const double single =
        single_level_compute_charge(c, work, budget, 0).value();
    EXPECT_NEAR(split / single, 1.0, 0.08) << mhz << " MHz";
  }
}

TEST(SplitLevel, StretchingWinsOnPureDynamicPowerCpu) {
  // Remove the base currents (a CPU-centric model): the split is now
  // cheaper wherever the lower level drops the voltage, and exactly
  // charge-neutral across equal-voltage gaps.
  std::vector<cpu::OperatingPoint> levels;
  const cpu::CpuSpec& itsy = itsy_sa1100();
  for (int i = 0; i < itsy.level_count(); ++i) levels.push_back(itsy.level(i));
  const cpu::CpuSpec pure(
      "pure-dynamic", levels,
      /*idle=*/{amps(0.0), amps(0.0)},
      /*comm=*/{amps(0.0), milliamps(80.0)},
      /*comp=*/{amps(0.0), milliamps(94.0)}, microseconds(150.0));
  for (double mhz : {65.0, 93.1, 110.0, 140.0, 170.0, 200.0}) {
    const Seconds budget = seconds(2.0);
    const Cycles work = deslp::work(megahertz(mhz), budget);
    const SplitSchedule s = split_level_schedule(pure, work, budget);
    ASSERT_TRUE(s.feasible) << mhz;
    const double split = split_compute_charge(pure, s).value();
    const double single =
        single_level_compute_charge(pure, work, budget, 0).value();
    if (pure.level(s.level_lo).voltage == pure.level(s.level_hi).voltage) {
      EXPECT_NEAR(split, single, single * 1e-9) << mhz << " MHz";
    } else {
      EXPECT_LT(split, single) << mhz << " MHz";
    }
  }
}

TEST(SplitLevel, AverageCurrentAccountsIdleSlack) {
  const cpu::CpuSpec& c = itsy_sa1100();
  const Seconds budget = seconds(2.0);
  const Cycles work = deslp::work(megahertz(30.0), budget);
  const SplitSchedule s = split_level_schedule(c, work, budget);
  const Amps avg =
      split_average_current(c, s, cpu::Mode::kComp, budget, 0);
  // Between pure idle (level 0) and pure comp (level 0).
  EXPECT_GT(avg, c.current(cpu::Mode::kIdle, 0) * 0.99);
  EXPECT_LT(avg, c.current(cpu::Mode::kComp, 0));
}

TEST(SplitLevel, WorkConservationAcrossSweep) {
  const cpu::CpuSpec& c = itsy_sa1100();
  for (double mhz = 40.0; mhz <= 206.0; mhz += 7.3) {
    const Seconds budget = seconds(1.7);
    const Cycles work = deslp::work(megahertz(mhz), budget);
    const SplitSchedule s = split_level_schedule(c, work, budget);
    ASSERT_TRUE(s.feasible) << mhz;
    EXPECT_NEAR((s.cycles_lo + s.cycles_hi).value(), work.value(),
                work.value() * 1e-9)
        << mhz;
    EXPECT_LE((s.time_lo + s.time_hi).value(),
              budget.value() * (1.0 + 1e-9))
        << mhz;
  }
}

}  // namespace
}  // namespace deslp::dvs
