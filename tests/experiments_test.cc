// Paper-level integration: run all eight experiments and assert the
// qualitative claims of §6 / Fig. 10 (DESIGN.md §4 lists these as the shape
// contract of the reproduction).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/calibration.h"
#include "core/experiment.h"
#include "util/log.h"

namespace deslp::core {
namespace {

class PaperExperiments : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    suite_ = new ExperimentSuite();
    auto list = suite_->run_all(paper_experiments());
    results_ = new std::map<std::string, ExperimentResult>();
    for (auto& r : list) (*results_)[r.id] = r;
  }
  static void TearDownTestSuite() {
    delete suite_;
    delete results_;
    suite_ = nullptr;
    results_ = nullptr;
  }

  static const ExperimentResult& get(const std::string& id) {
    return results_->at(id);
  }

  static ExperimentSuite* suite_;
  static std::map<std::string, ExperimentResult>* results_;
};

ExperimentSuite* PaperExperiments::suite_ = nullptr;
std::map<std::string, ExperimentResult>* PaperExperiments::results_ =
    nullptr;

TEST_F(PaperExperiments, AllEightExperimentsRan) {
  for (const char* id : {"0A", "0B", "1", "1A", "2", "2A", "2B", "2C"}) {
    ASSERT_TRUE(results_->count(id)) << id;
    EXPECT_GT(get(id).frames, 1000) << id;
  }
}

TEST_F(PaperExperiments, HalfSpeedDoublesNoIoWorkPerCharge) {
  // §6.1: at half clock the node completes about twice the frames.
  const double ratio = static_cast<double>(get("0B").frames) /
                       static_cast<double>(get("0A").frames);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
}

TEST_F(PaperExperiments, IoReducesCompletedWorkVsNoIo) {
  // §6.2: the baseline with I/O completes fewer frames than (0A).
  EXPECT_LT(get("1").frames, get("0A").frames);
}

TEST_F(PaperExperiments, DvsDuringIoExtendsBaseline) {
  // §6.3: T(1A) > T(1), and (1A) even beats the no-I/O run's frame count
  // (the battery recovery effect).
  EXPECT_GT(get("1A").battery_life.value(), get("1").battery_life.value());
  EXPECT_GT(get("1A").frames, get("0A").frames);
}

TEST_F(PaperExperiments, PartitioningMoreThanDoublesAbsoluteLife) {
  // §6.4: "the battery life is more than doubled" vs the baseline.
  EXPECT_GT(get("2").battery_life.value(),
            2.0 * get("1").battery_life.value());
}

TEST_F(PaperExperiments, Node2AlwaysFailsFirstInPartitionedRuns) {
  // §6.4/§6.5: the heavily loaded Node2 dies first; Node1 strands charge.
  for (const char* id : {"2", "2A"}) {
    const auto& nodes = get(id).details.nodes;
    ASSERT_EQ(nodes.size(), 2u) << id;
    EXPECT_TRUE(nodes[1].died) << id;
    EXPECT_GT(nodes[0].final_soc, nodes[1].final_soc + 0.1) << id;
  }
}

TEST_F(PaperExperiments, DistributedDvsDuringIoHelpsOnlyALittle) {
  // §6.5: (2A) gains a few percent over (2) — Node2's I/O share is tiny.
  const double gain = get("2A").battery_life / get("2").battery_life - 1.0;
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(gain, 0.10);
}

TEST_F(PaperExperiments, RecoveryExtendsPastNode2Death) {
  // §6.6: with acks+migration the survivor picks up thousands of frames.
  const auto& r = get("2B");
  ASSERT_EQ(r.details.nodes.size(), 2u);
  EXPECT_TRUE(r.details.nodes[1].died);
  EXPECT_TRUE(r.details.nodes[0].migrated);
  EXPECT_GT(r.battery_life.value(), get("2A").battery_life.value());
  // Node2 dies earlier than in (2A) because both nodes run faster (§6.6).
  EXPECT_LT(r.details.nodes[1].death_time.value(),
            get("2A").details.nodes[1].death_time.value());
}

TEST_F(PaperExperiments, RotationIsTheBestTechnique) {
  // §6.7 / Fig. 10: node rotation wins on absolute and normalised life.
  const auto& rot = get("2C");
  for (const char* id : {"1", "1A", "2", "2A", "2B"}) {
    EXPECT_GT(rot.battery_life.value(), get(id).battery_life.value()) << id;
    EXPECT_GT(rot.rnorm, get(id).rnorm) << id;
  }
}

TEST_F(PaperExperiments, RotationBalancesDischarge) {
  const auto& nodes = get("2C").details.nodes;
  ASSERT_EQ(nodes.size(), 2u);
  // Average currents within a few percent of each other.
  EXPECT_NEAR(to_milliamps(nodes[0].average_current),
              to_milliamps(nodes[1].average_current), 2.0);
  // Both batteries end up nearly equally drained.
  EXPECT_NEAR(nodes[0].final_soc, nodes[1].final_soc, 0.05);
  EXPECT_GT(nodes[0].rotations, 100);
}

TEST_F(PaperExperiments, AbsoluteLifetimeOrderingMatchesPaper) {
  // Fig. 10 absolute series: 1 < 1A < 2 < 2A < 2B < 2C.
  EXPECT_LT(get("1").battery_life.value(), get("1A").battery_life.value());
  EXPECT_LT(get("1A").battery_life.value(), get("2").battery_life.value());
  EXPECT_LT(get("2").battery_life.value(), get("2A").battery_life.value());
  EXPECT_LT(get("2A").battery_life.value(), get("2B").battery_life.value());
  EXPECT_LT(get("2B").battery_life.value(), get("2C").battery_life.value());
}

TEST_F(PaperExperiments, CalibratedAnchorsLandNearPaper) {
  // The calibration anchors (0B), (2), (2A) reproduce within 10%; (2C),
  // which was NOT used for calibration, must also land within 10% of the
  // paper's 17.82 h (pure prediction).
  EXPECT_NEAR(to_hours(get("0B").battery_life), 12.9, 1.29);
  EXPECT_NEAR(to_hours(get("2").battery_life), 14.1, 1.41);
  EXPECT_NEAR(to_hours(get("2A").battery_life), 14.44, 1.45);
  EXPECT_NEAR(to_hours(get("2C").battery_life), 17.82, 1.78);
  EXPECT_NEAR(to_hours(get("2B").battery_life), 15.72, 1.6);
}

TEST_F(PaperExperiments, NormalizedLifeUsesBatteryCount) {
  for (const char* id : {"2", "2A", "2B", "2C"}) {
    EXPECT_NEAR(get(id).normalized_life.value(),
                get(id).battery_life.value() / 2.0, 1e-9)
        << id;
  }
  EXPECT_DOUBLE_EQ(get("1A").normalized_life.value(),
                   get("1A").battery_life.value());
}

TEST_F(PaperExperiments, MetricsIdentityTEqualsFD) {
  // §4.5: T(N) = F(N) * D.
  for (const char* id : {"1", "1A", "2", "2A", "2B", "2C"}) {
    EXPECT_NEAR(get(id).battery_life.value(),
                static_cast<double>(get(id).frames) * 2.3, 1e-6)
        << id;
  }
}

TEST_F(PaperExperiments, BaselineRnormIsHundredPercent) {
  EXPECT_DOUBLE_EQ(get("1").rnorm, 1.0);
  EXPECT_DOUBLE_EQ(get("0A").rnorm, 0.0);  // excluded from comparison
}

TEST(Experiments, MissingBaselineWarnsAndLeavesRnormZero) {
  std::vector<std::string> warnings;
  log::set_sink([&](log::Level lvl, std::string_view msg) {
    if (lvl == log::Level::kWarn) warnings.emplace_back(msg);
  });
  ExperimentSuite suite;
  auto specs = paper_experiments();
  specs.resize(2);  // only the analytic 0A/0B runs: no "1" baseline in the set
  const auto results = suite.run_all(specs, "1");
  log::set_sink(nullptr);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_DOUBLE_EQ(r.rnorm, 0.0);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("baseline"), std::string::npos);
  EXPECT_NE(warnings[0].find("'1'"), std::string::npos);
}

TEST(Experiments, SpecsDeriveThePaperLevels) {
  // §5.3: the selected partition demands exactly 59 and 103.2 MHz.
  const auto part = selected_two_node_partition(
      cpu::itsy_sa1100(), atr::itsy_atr_profile(), net::itsy_serial_link());
  EXPECT_EQ(part.stages[0].min_level, cpu::sa1100_level_mhz(59.0));
  EXPECT_EQ(part.stages[1].min_level, cpu::sa1100_level_mhz(103.2));
  const auto specs = paper_experiments();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[4].id, "2");
  EXPECT_EQ(specs[4].stage_levels[0].comp_level, cpu::sa1100_level_mhz(59.0));
  EXPECT_EQ(specs[4].stage_levels[1].comp_level,
            cpu::sa1100_level_mhz(103.2));
}

TEST(Experiments, DeterministicAcrossRuns) {
  ExperimentSuite suite;
  const auto specs = paper_experiments();
  const auto a = suite.run(specs[3]);  // (1A), a full DES run
  const auto b = suite.run(specs[3]);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_DOUBLE_EQ(a.battery_life.value(), b.battery_life.value());
}

TEST(Calibration, CasesCoverSixAnchors) {
  const auto cases = paper_calibration_cases(
      cpu::itsy_sa1100(), atr::itsy_atr_profile(), net::itsy_serial_link());
  ASSERT_EQ(cases.size(), 6u);
  for (const auto& c : cases) {
    EXPECT_GT(c.reference_lifetime.value(), 0.0);
    EXPECT_FALSE(c.cycle.empty());
  }
  // The (1) anchor draws the paper's ~120 mA average.
  EXPECT_NEAR(to_milliamps(battery::cycle_average_current(cases[2].cycle)),
              119.5, 2.0);
}

}  // namespace
}  // namespace deslp::core
