#include <gtest/gtest.h>

#include <vector>

#include "net/hub.h"
#include "net/link.h"
#include "net/message.h"
#include "net/ppp.h"
#include "sim/engine.h"
#include "sim/task.h"
#include "util/rng.h"

namespace deslp::net {
namespace {

// --- serial link --------------------------------------------------------------

TEST(SerialLink, PayloadTimeUsesEffectiveRate) {
  SerialLink link(itsy_serial_link());
  // 10.1 KB at 80 Kbps = 10342.4 * 8 / 80000 s.
  EXPECT_NEAR(link.payload_time(kilobytes(10.1)).value(),
              10342.0 * 8.0 / 80000.0, 1e-3);
}

TEST(SerialLink, TransactionIncludesStartupWithinBounds) {
  SerialLink link(itsy_serial_link(), /*seed=*/7);
  for (int i = 0; i < 200; ++i) {
    const Seconds t = link.transaction_time(bytes(0));
    EXPECT_GE(t.value(), 0.050 - 1e-12);
    EXPECT_LE(t.value(), 0.100 + 1e-12);
  }
}

TEST(SerialLink, ExpectedTransactionUsesMidpointStartup) {
  SerialLink link(itsy_serial_link());
  EXPECT_NEAR(link.expected_transaction_time(bytes(0)).value(), 0.075,
              1e-12);
  // The paper's Fig. 6: 0.6 KB costs ~0.16 s, 10.1 KB ~1.1 s.
  EXPECT_NEAR(link.expected_transaction_time(kilobytes(0.6)).value(), 0.136,
              0.03);
  EXPECT_NEAR(link.expected_transaction_time(kilobytes(10.1)).value(), 1.11,
              0.05);
}

TEST(SerialLink, DeterministicPerSeed) {
  SerialLink a(itsy_serial_link(), 3), b(itsy_serial_link(), 3);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(a.transaction_time(bytes(100)).value(),
              b.transaction_time(bytes(100)).value());
}


TEST(SerialLink, AlternateInterconnectPresets) {
  // The paper's Â§1 names I2C and CAN as the realistic low-power buses.
  const LinkSpec i2c = i2c_fast_link();
  EXPECT_DOUBLE_EQ(i2c.line_rate.value(), 400000.0);
  EXPECT_LT(i2c.effective_rate.value(), i2c.line_rate.value());
  EXPECT_LT(i2c.startup_max.value(), 0.01);  // no PPP/TCP handshake

  const LinkSpec can = can_link(250.0);
  EXPECT_DOUBLE_EQ(can.line_rate.value(), 250000.0);
  EXPECT_DOUBLE_EQ(can.effective_rate.value(), 125000.0);
  // A 10.1 KB frame over CAN-250 beats the Itsy serial link on payload
  // time but pays per-transaction cost far less.
  SerialLink link(can);
  EXPECT_LT(link.expected_transaction_time(kilobytes(10.1)).value(), 1.0);
}

// --- PPP codec -------------------------------------------------------------------

TEST(Ppp, Fcs16KnownBehaviour) {
  // FCS of empty data, then self-consistency: RFC 1662's "good FCS" check —
  // the FCS over (data + fcs_lo + fcs_hi) equals the constant 0xF0B8 before
  // complement; equivalently decode() accepts what encode() produced.
  const std::vector<std::uint8_t> data{'H', 'e', 'l', 'l', 'o'};
  const std::uint16_t fcs = PppCodec::fcs16(data);
  std::vector<std::uint8_t> with_fcs = data;
  with_fcs.push_back(static_cast<std::uint8_t>(fcs & 0xFF));
  with_fcs.push_back(static_cast<std::uint8_t>(fcs >> 8));
  // Per RFC 1662 the FCS over data+FCS (without final complement inside)
  // is the magic residue; validate via decode path instead:
  const auto frame = PppCodec::encode(data);
  const auto back = PppCodec::decode(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Ppp, EncodeEscapesFlagAndEscapeBytes) {
  const std::vector<std::uint8_t> data{0x7E, 0x7D, 0x41};
  const auto frame = PppCodec::encode(data);
  // Interior of the frame must contain no raw flag bytes.
  for (std::size_t i = 1; i + 1 < frame.size(); ++i)
    EXPECT_NE(frame[i], PppCodec::kFlag);
  const auto back = PppCodec::decode(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Ppp, DecodeRejectsCorruptedFrames) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  auto frame = PppCodec::encode(data);
  auto corrupted = frame;
  corrupted[3] ^= 0x01;  // flip a payload bit -> FCS mismatch
  EXPECT_FALSE(PppCodec::decode(corrupted).has_value());
  // Truncated frame.
  frame.pop_back();
  EXPECT_FALSE(PppCodec::decode(frame).has_value());
  // Garbage without flags.
  EXPECT_FALSE(PppCodec::decode(data).has_value());
}

TEST(Ppp, EncodedSizePredictsEncodeExactly) {
  Rng rng(12);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint8_t> data(rng.below(200) + 1);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_EQ(PppCodec::encoded_size(data), PppCodec::encode(data).size());
  }
}

TEST(Ppp, RoundTripRandomPayloads) {
  Rng rng(34);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> data(rng.below(300) + 1);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    const auto back = PppCodec::decode(PppCodec::encode(data));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
  }
}

TEST(Ppp, ExpectedExpansionMatchesMeasured) {
  Rng rng(56);
  double measured = 0.0;
  const int rounds = 300;
  const std::size_t n = 256;
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    measured += static_cast<double>(PppCodec::encode(data).size()) /
                static_cast<double>(n);
  }
  measured /= rounds;
  EXPECT_NEAR(measured, PppCodec::expected_expansion(n), 0.01);
}

TEST(PppDeframer, ExtractsBackToBackFrames) {
  PppDeframer d;
  const std::vector<std::uint8_t> a{1, 2, 3};
  const std::vector<std::uint8_t> b{4, 5};
  std::vector<std::uint8_t> wire;
  for (auto byte : PppCodec::encode(a)) wire.push_back(byte);
  for (auto byte : PppCodec::encode(b)) wire.push_back(byte);
  std::vector<std::vector<std::uint8_t>> frames;
  for (auto byte : wire)
    if (auto f = d.feed(byte)) frames.push_back(*f);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], a);
  EXPECT_EQ(frames[1], b);
  EXPECT_EQ(d.frames_ok(), 2u);
}

TEST(PppDeframer, SkipsInterFrameGarbageAndBadFrames) {
  PppDeframer d;
  const std::vector<std::uint8_t> a{9, 8, 7};
  std::vector<std::uint8_t> wire{0x41, 0x42};  // garbage before any flag
  auto good = PppCodec::encode(a);
  auto bad = good;
  bad[2] ^= 0xFF;  // corrupt
  for (auto byte : bad) wire.push_back(byte);
  for (auto byte : good) wire.push_back(byte);
  std::vector<std::vector<std::uint8_t>> frames;
  for (auto byte : wire)
    if (auto f = d.feed(byte)) frames.push_back(*f);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], a);
  EXPECT_GE(d.frames_bad(), 1u);
}

// --- hub ---------------------------------------------------------------------------

struct RecvLog {
  std::vector<Delivery> got;
};

sim::Task drain_mailbox(sim::Channel<Delivery>& mb, RecvLog& log) {
  for (;;) {
    auto d = co_await mb.recv();
    if (!d) co_return;
    log.got.push_back(*d);
  }
}

TEST(Hub, RoutesBetweenEndpoints) {
  sim::Engine e;
  Hub hub(e, itsy_serial_link());
  auto& mb0 = hub.attach(0);
  auto& mb1 = hub.attach(1);
  (void)mb0;
  RecvLog log;
  e.spawn(drain_mailbox(mb1, log));

  Message m;
  m.src = 0;
  m.dst = 1;
  m.kind = MsgKind::kData;
  m.frame = 7;
  m.size = kilobytes(1.0);
  const Seconds wire = hub.begin_send(m);
  EXPECT_GT(wire.value(), 0.05);
  e.run();
  ASSERT_EQ(log.got.size(), 1u);
  EXPECT_EQ(log.got[0].msg.frame, 7);
  EXPECT_DOUBLE_EQ(log.got[0].wire_time.value(), wire.value());
  // Cut-through: delivery lands one forward latency after send start.
  EXPECT_NEAR(sim::to_seconds(log.got[0].wire_start).value(), 0.005, 1e-9);
  EXPECT_EQ(hub.stats().transactions, 1);
}

TEST(Hub, DropsMessagesToFailedEndpoint) {
  sim::Engine e;
  Hub hub(e, itsy_serial_link());
  hub.attach(0);
  auto& mb1 = hub.attach(1);
  RecvLog log;
  e.spawn(drain_mailbox(mb1, log));
  hub.set_failed(1, true);
  Message m;
  m.src = 0;
  m.dst = 1;
  m.size = bytes(10);
  hub.begin_send(m);
  e.run();
  EXPECT_TRUE(log.got.empty());
  EXPECT_EQ(hub.stats().dropped_to_failed, 1);
  EXPECT_TRUE(hub.failed(1));
}

TEST(Hub, FailureClosesMailbox) {
  sim::Engine e;
  Hub hub(e, itsy_serial_link());
  auto& mb1 = hub.attach(1);
  RecvLog log;
  bool done = false;
  e.spawn([](sim::Channel<Delivery>& mb, bool& flag) -> sim::Task {
    auto d = co_await mb.recv();
    EXPECT_FALSE(d.has_value());
    flag = true;
  }(mb1, done));
  e.schedule_at(sim::Time{1000}, [&] { hub.set_failed(1, true); });
  e.run();
  EXPECT_TRUE(done);
}

TEST(Hub, DropsWhenDestinationDiesInFlight) {
  sim::Engine e;
  Hub hub(e, itsy_serial_link());
  hub.attach(0);
  auto& mb1 = hub.attach(1);
  RecvLog log;
  e.spawn(drain_mailbox(mb1, log));
  Message m;
  m.src = 0;
  m.dst = 1;
  m.size = bytes(10);
  hub.begin_send(m);
  // Fail the destination before the 5 ms forward latency elapses.
  e.schedule_at(sim::Time{1'000'000}, [&] { hub.set_failed(1, true); });
  e.run();
  EXPECT_TRUE(log.got.empty());
}

TEST(Hub, ExpectedWireTimeIsDeterministic) {
  sim::Engine e;
  Hub hub(e, itsy_serial_link());
  hub.attach(3);
  const Seconds a = hub.expected_wire_time(3, kilobytes(10.1));
  const Seconds b = hub.expected_wire_time(3, kilobytes(10.1));
  EXPECT_DOUBLE_EQ(a.value(), b.value());
  EXPECT_NEAR(a.value(), 0.075 + 10342.0 * 8.0 / 80000.0, 1e-3);
}

TEST(Hub, MessageKindNames) {
  EXPECT_STREQ(msg_kind_name(MsgKind::kData), "DATA");
  EXPECT_STREQ(msg_kind_name(MsgKind::kAck), "ACK");
  EXPECT_STREQ(msg_kind_name(MsgKind::kControl), "CTRL");
}

}  // namespace
}  // namespace deslp::net
