#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <thread>
#include <vector>

#include "atr/detect.h"
#include "atr/distance.h"
#include "atr/fft.h"
#include "atr/image.h"
#include "atr/match.h"
#include "atr/pipeline.h"
#include "atr/profile.h"
#include "util/rng.h"

namespace deslp::atr {
namespace {

// --- image ------------------------------------------------------------------

TEST(Image, BasicAccessors) {
  Image img(8, 4, 0.5f);
  EXPECT_EQ(img.width(), 8);
  EXPECT_EQ(img.height(), 4);
  EXPECT_EQ(img.size(), 32u);
  img.at(3, 2) = 2.0f;
  EXPECT_FLOAT_EQ(img.at(3, 2), 2.0f);
  EXPECT_FLOAT_EQ(img.at_or_zero(-1, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at_or_zero(8, 0), 0.0f);
}

TEST(Image, Statistics) {
  Image img(2, 2);
  img.at(0, 0) = 1.0f;
  img.at(1, 0) = 2.0f;
  img.at(0, 1) = 3.0f;
  img.at(1, 1) = 4.0f;
  EXPECT_FLOAT_EQ(img.mean(), 2.5f);
  EXPECT_FLOAT_EQ(img.max_value(), 4.0f);
  EXPECT_NEAR(img.stddev(), std::sqrt(1.25), 1e-6);
}

TEST(Image, CropCentersAndZeroPads) {
  Image img(16, 16);
  img.at(8, 8) = 1.0f;
  const Image roi = img.crop(8, 8, 4, 4);
  EXPECT_FLOAT_EQ(roi.at(2, 2), 1.0f);  // centre maps to (w/2, h/2)
  const Image edge = img.crop(0, 0, 8, 8);
  EXPECT_FLOAT_EQ(edge.at(0, 0), 0.0f);  // off-image region zero-padded
}

TEST(Image, BoxBlurPreservesMass) {
  Rng rng(5);
  Image img(16, 16, 1.0f);
  const Image blurred = img.box_blur3();
  // Interior of a constant image stays constant.
  EXPECT_NEAR(blurred.at(8, 8), 1.0f, 1e-6);
  // Edges lose the out-of-bounds contribution.
  EXPECT_NEAR(blurred.at(0, 0), 4.0f / 9.0f, 1e-6);
}

TEST(Image, NoiseHasRequestedSigma) {
  Rng rng(17);
  Image img(64, 64);
  img.add_gaussian_noise(rng, 0.1f);
  EXPECT_NEAR(img.mean(), 0.0f, 0.01);
  EXPECT_NEAR(img.stddev(), 0.1f, 0.01);
}

TEST(Image, TemplateBankIsUnitEnergyZeroMean) {
  for (const Image& t : template_bank()) {
    double sum = 0.0, energy = 0.0;
    for (float v : t.data()) {
      sum += static_cast<double>(v);
      energy += static_cast<double>(v) * static_cast<double>(v);
    }
    EXPECT_NEAR(sum, 0.0, 1e-4);
    EXPECT_NEAR(energy, 1.0, 1e-4);
  }
}

// --- fft -----------------------------------------------------------------------

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(17), 32u);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> data(8, Complex(0, 0));
  data[0] = Complex(1, 0);
  fft(data);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcGivesSingleBin) {
  std::vector<Complex> data(16, Complex(1, 0));
  fft(data);
  EXPECT_NEAR(data[0].real(), 16.0, 1e-9);
  for (std::size_t i = 1; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9);
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(9);
  std::vector<Complex> data(128);
  for (auto& c : data) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  auto original = data;
  fft(data);
  ifft(data);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-9);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(10);
  std::vector<Complex> data(64);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    time_energy += std::norm(c);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * 64.0, 1e-6);
}

TEST(Fft, Linearity) {
  Rng rng(11);
  std::vector<Complex> a(32), b(32), sum(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = Complex(rng.uniform(-1, 1), 0);
    b[i] = Complex(rng.uniform(-1, 1), 0);
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-9);
}

TEST(Fft2d, RoundTripOnImage) {
  Rng rng(13);
  Image img(32, 32);
  img.add_gaussian_noise(rng, 1.0f);
  const Image back = ifft2d(fft2d(img));
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      EXPECT_NEAR(back.at(x, y), img.at(x, y), 1e-4);
}

TEST(Fft2d, MultiplyConjIsCrossCorrelation) {
  // Correlating a shifted impulse against an origin impulse peaks at the
  // shift.
  Image a(16, 16), b(16, 16);
  a.at(5, 3) = 1.0f;
  b.at(0, 0) = 1.0f;
  const Image corr = ifft2d(multiply_conj(fft2d(a), fft2d(b)));
  int px = -1, py = -1;
  float best = -1.0f;
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      if (corr.at(x, y) > best) {
        best = corr.at(x, y);
        px = x;
        py = y;
      }
  EXPECT_EQ(px, 5);
  EXPECT_EQ(py, 3);
}

// O(n^2) direct DFT: the textbook definition, used as the accuracy reference
// for the fast transforms. Reduces the phase index mod n so the angle stays
// in [0, 2*pi) and the reference itself carries no accumulated-phase error.
std::vector<Complex> direct_dft(const std::vector<Complex>& in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi *
                         static_cast<double>((j * k) % n) /
                         static_cast<double>(n);
      acc += in[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

TEST(Fft, MatchesDirectDft) {
  Rng rng(77);
  std::vector<Complex> data(256);
  for (auto& c : data) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto ref_fwd = direct_dft(data, false);
  auto fwd = data;
  fft(fwd);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(fwd[i] - ref_fwd[i]), 0.0, 1e-11) << "bin " << i;
  const auto ref_inv = direct_dft(ref_fwd, true);
  auto inv = fwd;
  ifft(inv);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(inv[i] - ref_inv[i]), 0.0, 1e-11) << "bin " << i;
}

TEST(Fft, LargeTransformStaysAccurate) {
  // Accuracy guard for the precomputed twiddle tables. The previous
  // butterfly generated twiddles with the `w *= wlen` recurrence, whose
  // rounding error compounds with log2(n): at n=4096 it sat at ~6e-12
  // against the direct DFT, while the table-driven transform stays at
  // ~6e-13. The 1e-12 bound separates the two implementations.
  Rng rng(77);
  std::vector<Complex> data(4096);
  for (auto& c : data) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto ref = direct_dft(data, false);
  auto got = data;
  fft(got);
  double max_err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i)
    max_err = std::max(max_err, std::abs(got[i] - ref[i]));
  EXPECT_LT(max_err, 1e-12);

  // Round trip at the same size: forward+inverse error is of the same order.
  ifft(got);
  double rt_err = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i)
    rt_err = std::max(rt_err, std::abs(got[i] - data[i]));
  EXPECT_LT(rt_err, 1e-12);
}

// --- detection --------------------------------------------------------------------

TEST(Detect, FindsPlantedTargets) {
  Rng rng(21);
  SceneSpec spec;
  spec.targets = {{40, 40, 0, 1.0}, {90, 70, 1, 1.2}};
  const Image frame = render_scene(spec, rng);
  const auto detections = detect_targets(frame);
  ASSERT_GE(detections.size(), 2u);
  // Each planted target has a detection within a few pixels.
  for (const auto& truth : spec.targets) {
    bool found = false;
    for (const auto& d : detections) {
      if (std::abs(d.x - truth.x) <= 3 && std::abs(d.y - truth.y) <= 3)
        found = true;
    }
    EXPECT_TRUE(found) << "target at (" << truth.x << "," << truth.y << ")";
  }
}

TEST(Detect, EmptySceneYieldsNoDetections) {
  Rng rng(22);
  SceneSpec spec;  // no targets
  spec.noise_sigma = 0.05f;
  const Image frame = render_scene(spec, rng);
  // A stricter threshold than the default 4-sigma: smoothed Gaussian noise
  // over ~16k pixels produces the occasional 4-sigma excursion, which the
  // later matched-filter stage would reject; at 5.5 sigma the detector
  // itself must stay silent.
  DetectOptions opt;
  opt.k_sigma = 5.5f;
  EXPECT_TRUE(detect_targets(frame, opt).empty());
}

TEST(Detect, NonMaxSuppressionSeparatesPeaks) {
  Rng rng(23);
  SceneSpec spec;
  spec.targets = {{40, 40, 0, 1.0}, {44, 40, 0, 1.0}};  // 4 px apart
  const Image frame = render_scene(spec, rng);
  DetectOptions opt;
  opt.min_separation = 12;
  const auto detections = detect_targets(frame, opt);
  EXPECT_EQ(detections.size(), 1u);  // merged by NMS
}

TEST(Detect, RoiExtractionIsPow2) {
  Rng rng(24);
  SceneSpec spec;
  spec.targets = {{64, 64, 0, 1.0}};
  const Image frame = render_scene(spec, rng);
  const auto detections = detect_targets(frame);
  ASSERT_FALSE(detections.empty());
  const Image roi = extract_roi(frame, detections[0]);
  EXPECT_EQ(roi.width(), 32);
  EXPECT_EQ(roi.height(), 32);
}

// --- matching ----------------------------------------------------------------------

TEST(Match, IdentifiesCorrectTemplate) {
  Rng rng(31);
  for (int tid = 0; tid < 3; ++tid) {
    SceneSpec spec;
    spec.targets = {{64, 64, tid, 1.0}};
    const Image frame = render_scene(spec, rng);
    const auto s1 = stage_target_detection(frame);
    ASSERT_FALSE(s1.rois.empty());
    const MatchResult m = best_match(roi_spectrum(s1.rois[0]));
    EXPECT_EQ(m.template_id, tid) << "template " << tid;
    EXPECT_GT(m.score, 0.5);
  }
}

TEST(Match, PeakNearRoiCenter) {
  Rng rng(32);
  SceneSpec spec;
  spec.targets = {{60, 60, 0, 1.0}};
  const Image frame = render_scene(spec, rng);
  const auto s1 = stage_target_detection(frame);
  ASSERT_FALSE(s1.rois.empty());
  const MatchResult m = best_match(roi_spectrum(s1.rois[0]));
  // The ROI is centred on the detection, so the correlation peak sits near
  // the ROI centre (16, 16).
  EXPECT_NEAR(m.peak_x, 16, 3);
  EXPECT_NEAR(m.peak_y, 16, 3);
}

TEST(Match, TemplateCacheConcurrentFirstTouch) {
  // Cache-stampede check: many threads first-touch the same previously
  // unused ROI size at once. Every thread must come back with a reference
  // to the one cached entry (the map keeps the first insertion; losers'
  // copies are discarded), and matching through the cache must work while
  // the entry is being raced into existence. Run under
  // -DDESLP_SANITIZE=thread this also proves the shared_mutex read path.
  constexpr int kRoiSize = 64;  // no other test requests 64
  constexpr int kThreads = 8;
  std::vector<const std::vector<Spectrum>*> plain(kThreads, nullptr);
  std::vector<const std::vector<Spectrum>*> conj(kThreads, nullptr);
  std::vector<MatchResult> results(kThreads);

  Rng rng(71);
  Image roi(kRoiSize, kRoiSize);
  roi.add_gaussian_noise(rng, 0.05f);
  roi.at(kRoiSize / 2, kRoiSize / 2) = 4.0f;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      plain[t] = &template_spectra(kRoiSize);
      conj[t] = &template_spectra_conj(kRoiSize);
      results[t] = best_match(roi_spectrum(roi));
    });
  }
  for (auto& w : workers) w.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plain[t], plain[0]);
    EXPECT_EQ(conj[t], conj[0]);
    EXPECT_EQ(results[t].template_id, results[0].template_id);
    EXPECT_DOUBLE_EQ(results[t].score, results[0].score);
  }
  // The conjugate bank really is the conjugate of the plain bank.
  ASSERT_EQ(plain[0]->size(), conj[0]->size());
  for (std::size_t i = 0; i < plain[0]->size(); ++i) {
    const auto& p = (*plain[0])[i].data();
    const auto& c = (*conj[0])[i].data();
    ASSERT_EQ(p.size(), c.size());
    for (std::size_t j = 0; j < p.size(); ++j)
      EXPECT_EQ(c[j], std::conj(p[j]));
  }
}

TEST(Match, SpectrumCacheResetRebuildsIdentically) {
  // Pin for the explicit cache object (DESIGN.md §12): resetting the
  // template-spectrum cache and re-touching it rebuilds entries that are
  // bit-identical to the originals — the cache is a pure memoisation of
  // template_bank(), so dropping it can never change results, and tests
  // that reset it for isolation get exactly the same spectra back.
  const int roi_size = template_size();
  const std::vector<Spectrum> plain_before = template_spectra(roi_size);
  const std::vector<Spectrum> conj_before = template_spectra_conj(roi_size);

  spectrum_cache_reset();

  const std::vector<Spectrum>& plain_after = template_spectra(roi_size);
  const std::vector<Spectrum>& conj_after = template_spectra_conj(roi_size);
  ASSERT_EQ(plain_after.size(), plain_before.size());
  ASSERT_EQ(conj_after.size(), conj_before.size());
  for (std::size_t i = 0; i < plain_before.size(); ++i) {
    const auto& pb = plain_before[i].data();
    const auto& pa = plain_after[i].data();
    const auto& cb = conj_before[i].data();
    const auto& ca = conj_after[i].data();
    ASSERT_EQ(pa.size(), pb.size());
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t j = 0; j < pb.size(); ++j) {
      EXPECT_EQ(pa[j], pb[j]) << "plain spectrum " << i << " bin " << j;
      EXPECT_EQ(ca[j], cb[j]) << "conj spectrum " << i << " bin " << j;
    }
  }

  // And matching through the rebuilt cache still behaves.
  Rng rng(72);
  Image roi(roi_size, roi_size);
  roi.add_gaussian_noise(rng, 0.05f);
  roi.at(roi_size / 2, roi_size / 2) = 4.0f;
  const MatchResult before = best_match(roi_spectrum(roi));
  spectrum_cache_reset();
  const MatchResult after = best_match(roi_spectrum(roi));
  EXPECT_EQ(after.template_id, before.template_id);
  EXPECT_DOUBLE_EQ(after.score, before.score);
  EXPECT_EQ(after.peak_x, before.peak_x);
  EXPECT_EQ(after.peak_y, before.peak_y);
}

// --- distance ----------------------------------------------------------------------

TEST(Distance, InverseSquareLawRecoversRange) {
  Rng rng(41);
  for (double d : {1.0, 1.5, 2.0}) {
    SceneSpec spec;
    spec.noise_sigma = 0.02f;
    spec.targets = {{64, 64, 0, d}};
    const Image frame = render_scene(spec, rng);
    DetectOptions det;
    det.k_sigma = 3.0f;
    AtrOptions opt;
    opt.detect = det;
    const AtrResult r = run_atr(frame, opt);
    ASSERT_FALSE(r.targets.empty()) << "d=" << d;
    EXPECT_NEAR(r.targets[0].range.distance, d, d * 0.15) << "d=" << d;
  }
}

TEST(Distance, NoTargetBelowFloor) {
  MatchResult weak;
  weak.template_id = 1;
  weak.score = 0.01;
  const DistanceEstimate est = estimate_distance(weak);
  EXPECT_LE(est.confidence, 0.0);
  EXPECT_DOUBLE_EQ(est.distance, 0.0);
}


// --- sub-pixel peak refinement ------------------------------------------------------

TEST(Refine, ExactQuadraticPeakRecovered) {
  // Sample a known parabola peaked at (5.3, 7.8) and check the refinement
  // recovers the fractional offset and peak height.
  Image surface(16, 16);
  const double px = 5.3, py = 7.8, h = 2.0;
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) {
      const double dx = x - px, dy = y - py;
      surface.at(x, y) =
          static_cast<float>(h - 0.1 * dx * dx - 0.2 * dy * dy);
    }
  const PeakRefinement r = refine_peak(surface, 5, 8);
  EXPECT_NEAR(5.0 + r.dx, px, 1e-3);
  EXPECT_NEAR(8.0 + r.dy, py, 1e-3);
  EXPECT_NEAR(r.value, h, 1e-3);
}

TEST(Refine, IntegerPeakHasZeroOffset) {
  Image surface(8, 8);
  surface.at(4, 4) = 1.0f;
  surface.at(3, 4) = 0.5f;
  surface.at(5, 4) = 0.5f;
  surface.at(4, 3) = 0.5f;
  surface.at(4, 5) = 0.5f;
  const PeakRefinement r = refine_peak(surface, 4, 4);
  EXPECT_NEAR(r.dx, 0.0, 1e-9);
  EXPECT_NEAR(r.dy, 0.0, 1e-9);
  EXPECT_NEAR(r.value, 1.0, 1e-9);
}

TEST(Refine, EdgePeakFallsBackToInteger) {
  Image surface(8, 8);
  surface.at(0, 0) = 1.0f;
  const PeakRefinement r = refine_peak(surface, 0, 0);
  EXPECT_DOUBLE_EQ(r.dx, 0.0);
  EXPECT_DOUBLE_EQ(r.dy, 0.0);
  EXPECT_NEAR(r.value, 1.0, 1e-9);
}

TEST(Refine, FlatNeighbourhoodNoRefinement) {
  Image surface(8, 8, 0.5f);
  const PeakRefinement r = refine_peak(surface, 4, 4);
  EXPECT_DOUBLE_EQ(r.dx, 0.0);
  EXPECT_DOUBLE_EQ(r.dy, 0.0);
}

TEST(Refine, MatchResultCarriesRefinedFields) {
  Rng rng(61);
  SceneSpec spec;
  spec.targets = {{64, 64, 0, 1.0}};
  const Image frame = render_scene(spec, rng);
  const auto s1 = stage_target_detection(frame);
  ASSERT_FALSE(s1.rois.empty());
  const MatchResult m = best_match(roi_spectrum(s1.rois[0]));
  EXPECT_GE(m.refined_score, m.score * 0.999);
  EXPECT_NEAR(m.refined_x, m.peak_x, 0.5 + 1e-9);
  EXPECT_NEAR(m.refined_y, m.peak_y, 0.5 + 1e-9);
}

// --- staged pipeline vs monolithic ----------------------------------------------------

TEST(Pipeline, StagedEqualsMonolithic) {
  Rng rng(51);
  SceneSpec spec;
  spec.targets = {{40, 80, 2, 1.3}};
  const Image frame = render_scene(spec, rng);
  const AtrResult staged = stage_compute_distance(
      stage_ifft(stage_fft(stage_target_detection(frame))), {});
  const AtrResult mono = run_atr(frame);
  ASSERT_EQ(staged.targets.size(), mono.targets.size());
  for (std::size_t i = 0; i < staged.targets.size(); ++i) {
    EXPECT_EQ(staged.targets[i].match.template_id,
              mono.targets[i].match.template_id);
    EXPECT_DOUBLE_EQ(staged.targets[i].range.distance,
                     mono.targets[i].range.distance);
  }
}

TEST(Pipeline, GoldenRunAtrMatchesRecordedValues) {
  // End-to-end numeric pin for the kernel fast paths: a fixed-seed scene
  // whose full run_atr output was recorded before the workspace/real-FFT/
  // fused-scan rewrite (the rewrite reproduced it bitwise; the 1e-9 bound
  // leaves headroom for future FMA/vectorisation differences only).
  Rng rng(2026);
  SceneSpec spec;
  spec.targets = {{40, 40, 0, 1.0}, {90, 70, 1, 1.2}, {64, 100, 2, 0.9}};
  const Image frame = render_scene(spec, rng);
  const AtrResult r = run_atr(frame, {});

  struct Golden {
    int det_x, det_y, tid, peak_x, peak_y;
    double score, rx, ry, rs, dist, conf;
  };
  const Golden golden[] = {
      {41, 40, 0, 15, 16, 0.93693697452545166, 14.994782705353186,
       16.062511150211101, 0.93771008612092488, 1.0331058268584583,
       0.88693697452545162},
      {67, 100, 2, 13, 16, 1.2404229640960693, 13.005470944773798,
       15.991684394241432, 1.2404592048980048, 0.89787339084842055,
       1.1904229640960693},
      {92, 71, 1, 14, 15, 0.74129682779312134, 14.000620234581376,
       14.989638920045772, 0.74131270189929843, 1.1614591217967905,
       0.69129682779312129},
  };
  ASSERT_EQ(r.targets.size(), std::size(golden));
  for (std::size_t i = 0; i < std::size(golden); ++i) {
    const auto& t = r.targets[i];
    const auto& g = golden[i];
    EXPECT_EQ(t.detection.x, g.det_x) << "target " << i;
    EXPECT_EQ(t.detection.y, g.det_y) << "target " << i;
    EXPECT_EQ(t.match.template_id, g.tid) << "target " << i;
    EXPECT_EQ(t.match.peak_x, g.peak_x) << "target " << i;
    EXPECT_EQ(t.match.peak_y, g.peak_y) << "target " << i;
    EXPECT_NEAR(t.match.score, g.score, 1e-9) << "target " << i;
    EXPECT_NEAR(t.match.refined_x, g.rx, 1e-9) << "target " << i;
    EXPECT_NEAR(t.match.refined_y, g.ry, 1e-9) << "target " << i;
    EXPECT_NEAR(t.match.refined_score, g.rs, 1e-9) << "target " << i;
    EXPECT_NEAR(t.range.distance, g.dist, 1e-9) << "target " << i;
    EXPECT_NEAR(t.range.confidence, g.conf, 1e-9) << "target " << i;
  }
}

// --- profile -----------------------------------------------------------------------

TEST(Profile, PaperRawMatchesFig6) {
  const AtrProfile& p = paper_raw_profile();
  ASSERT_EQ(p.block_count(), 4);
  EXPECT_EQ(p.block(0).name, "Target Detection");
  EXPECT_EQ(p.block(3).name, "Compute Distance");
  // Times at 206.4 MHz.
  EXPECT_NEAR(execution_time(p.block(0).work, megahertz(206.4)).value(),
              0.18, 1e-9);
  EXPECT_NEAR(execution_time(p.block(3).work, megahertz(206.4)).value(),
              0.53, 1e-9);
  // Payloads.
  EXPECT_NEAR(to_kilobytes(p.input()), 10.1, 0.01);
  EXPECT_NEAR(to_kilobytes(p.block(0).output), 0.6, 0.01);
  EXPECT_NEAR(to_kilobytes(p.block(1).output), 7.5, 0.01);
  EXPECT_NEAR(to_kilobytes(p.result_size()), 0.1, 0.01);
}

TEST(Profile, NormalizedTotalIsWholeAlgorithmTime) {
  const AtrProfile& p = itsy_atr_profile();
  EXPECT_NEAR(execution_time(p.total_work(), megahertz(206.4)).value(), 1.10,
              1e-9);
  // Ratios between blocks are preserved from Fig. 6.
  const double r = p.block(3).work / p.block(0).work;
  EXPECT_NEAR(r, 0.53 / 0.18, 1e-9);
}

TEST(Profile, InputOfChainsBlocks) {
  const AtrProfile& p = paper_raw_profile();
  EXPECT_EQ(p.input_of(0), p.input());
  EXPECT_EQ(p.input_of(1), p.block(0).output);
  EXPECT_EQ(p.input_of(3), p.block(2).output);
}

TEST(Profile, WorkOfRangeAddsUp) {
  const AtrProfile& p = paper_raw_profile();
  EXPECT_DOUBLE_EQ(
      p.work_of_range(0, 3).value(),
      (p.block(0).work + p.block(1).work + p.block(2).work + p.block(3).work)
          .value());
  EXPECT_DOUBLE_EQ(p.work_of_range(1, 2).value(),
                   (p.block(1).work + p.block(2).work).value());
}

}  // namespace
}  // namespace deslp::atr
