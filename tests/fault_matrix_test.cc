// Recovery stress-test matrix (DESIGN.md §10): every fault archetype ×
// pipeline shape cell must terminate with the run invariants intact — no
// phantom frames, conserved charge, bit-reproducible replay — and the
// fault layer must be a true no-op when no plan is given (golden values
// pinned against the fault-free build).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "battery/battery.h"
#include "battery/kibam.h"
#include "core/experiment.h"
#include "core/fleet.h"
#include "core/system.h"
#include "core/topology.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "task/partition.h"

namespace deslp::core {
namespace {

// One pipeline shape the matrix runs every archetype against.
struct Shape {
  const char* name;
  int stages;
  bool acks;
  long long rotation;
};

const Shape kShapes[] = {
    {"solo", 1, false, 0},
    {"acks", 2, true, 0},
    {"rotation", 2, false, 50},
};

// One fault archetype: builds the plan given the cell's node count.
struct Archetype {
  const char* name;
  fault::FaultPlan (*plan)(int stages);
};

fault::FaultEvent event(fault::FaultKind kind, int target, double at,
                        double dur, double magnitude = 1.0) {
  return {kind, target, seconds(at), seconds(dur), magnitude};
}

const Archetype kArchetypes[] = {
    {"blackout",
     [](int stages) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kLinkBlackout, stages, 60.0, 30.0));
       return p;
     }},
    {"rate_degrade",
     [](int) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kRateDegrade, 0, 30.0, 60.0, 0.25));
       return p;
     }},
    {"burst_loss",
     [](int) {
       fault::FaultPlan p;
       p.seed = 5;
       p.events.push_back(
           event(fault::FaultKind::kBurstLoss, 0, 30.0, 120.0, 0.3));
       return p;
     }},
    {"ack_suppress",
     [](int) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kAckSuppress, 0, 60.0, 20.0));
       return p;
     }},
    {"brownout",
     [](int stages) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kBrownout, stages, 60.0, 30.0));
       return p;
     }},
    {"sudden_death",
     [](int stages) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kSuddenDeath, stages, 90.0, 0.0));
       return p;
     }},
    {"capacity_scale",
     [](int stages) {
       fault::FaultPlan p;
       p.events.push_back(
           event(fault::FaultKind::kCapacityScale, stages, 0.0, 0.0, 0.5));
       return p;
     }},
};

constexpr double kCellMah = 8.0;  // small pack: cells run in seconds

SystemConfig cell_config(const Shape& shape, const fault::FaultPlan& plan) {
  SystemConfig sys;
  sys.cpu = &cpu::itsy_sa1100();
  sys.profile = &atr::itsy_atr_profile();
  sys.link = net::itsy_serial_link();
  sys.battery_factory = [] {
    return battery::make_kibam_battery(
        battery::KibamParams{milliamp_hours(kCellMah), 0.3, 5e-4});
  };
  sys.frame_delay = seconds(2.3);
  sys.max_frames = 3000;
  sys.seed = 42;

  const auto analyses = task::analyze_all_partitions(
      *sys.profile, shape.stages, *sys.cpu, sys.link, sys.frame_delay);
  const int best = task::best_partition_index(analyses);
  EXPECT_GE(best, 0);
  const auto& a = analyses[static_cast<std::size_t>(best)];
  sys.partition = a.partition;
  for (const auto& s : a.stages) {
    // One level of headroom above the minimum so the ack overhead never
    // pushes a cell to the feasibility edge.
    const int lv = std::min(s.min_level + 1, sys.cpu->level_count() - 1);
    sys.stage_levels.push_back({lv, 0, 0});
  }
  sys.use_acks = shape.acks;
  sys.rotation_period = shape.rotation;
  sys.migrated_levels = {sys.cpu->top_level(), 0, 0};
  sys.faults = plan;
  return sys;
}

void expect_invariants(const RunResult& r, const Shape& shape) {
  // No phantom frames: the host never receives more results than inputs.
  EXPECT_LE(r.frames_completed, r.frames_sent);
  EXPECT_GT(r.frames_completed, 0);  // faults start after warm-up
  EXPECT_LE(r.last_completion.value(), r.sim_end.value() + 1e-9);
  ASSERT_EQ(static_cast<int>(r.nodes.size()), shape.stages);
  const double capacity_c = kCellMah * 3.6;  // mAh -> coulombs
  for (const auto& n : r.nodes) {
    // Conserved charge: the battery never sources more than was installed
    // and the state of charge stays physical.
    EXPECT_LE(n.charge_used.value(), capacity_c * 1.01) << n.name;
    EXPECT_GE(n.final_soc, -1e-9) << n.name;
    EXPECT_LE(n.final_soc, 1.0 + 1e-9) << n.name;
    if (n.died) {
      EXPECT_GT(n.death_time.value(), 0.0) << n.name;
      EXPECT_LE(n.death_time.value(), r.sim_end.value() + 1e-6) << n.name;
    }
  }
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_completed, b.frames_completed);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.migration_retries, b.migration_retries);
  EXPECT_EQ(a.fault_injections, b.fault_injections);
  EXPECT_DOUBLE_EQ(a.sim_end.value(), b.sim_end.value());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].died, b.nodes[i].died);
    EXPECT_DOUBLE_EQ(a.nodes[i].death_time.value(),
                     b.nodes[i].death_time.value());
    EXPECT_DOUBLE_EQ(a.nodes[i].charge_used.value(),
                     b.nodes[i].charge_used.value());
    EXPECT_DOUBLE_EQ(a.nodes[i].final_soc, b.nodes[i].final_soc);
    EXPECT_EQ(a.nodes[i].rotations, b.nodes[i].rotations);
    EXPECT_EQ(a.nodes[i].migrated, b.nodes[i].migrated);
  }
}

class FaultMatrix : public ::testing::TestWithParam<int> {};

TEST_P(FaultMatrix, CellTerminatesWithInvariantsAndReplaysExactly) {
  const Archetype& arch = kArchetypes[static_cast<std::size_t>(GetParam())];
  for (const Shape& shape : kShapes) {
    SCOPED_TRACE(std::string(arch.name) + " x " + shape.name);
    const fault::FaultPlan plan = arch.plan(shape.stages);

    SystemConfig first = cell_config(shape, plan);
    SystemConfig second = cell_config(shape, plan);
    PipelineSystem sys_a(std::move(first));
    const RunResult a = sys_a.run();
    expect_invariants(a, shape);
    EXPECT_GT(a.fault_injections +
                  (plan.events[0].kind == fault::FaultKind::kCapacityScale
                       ? 1
                       : 0),
              0);

    // Bit-reproducible replay: a second system built from the same config
    // must retrace the first run exactly.
    PipelineSystem sys_b(std::move(second));
    expect_identical(a, sys_b.run());
  }
}

INSTANTIATE_TEST_SUITE_P(Archetypes, FaultMatrix, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(
                               kArchetypes[static_cast<std::size_t>(
                                               info.param)]
                                   .name);
                         });

// Death faults must hand the pipeline to the survivor when the ack
// protocol is on: the survivor migrates, announces, and keeps completing
// frames after the victim is gone.
TEST(FaultMatrixRecovery, SurvivorTakesOverAfterSuddenDeath) {
  const Shape shape{"acks", 2, true, 0};
  fault::FaultPlan plan;
  plan.events.push_back(
      event(fault::FaultKind::kSuddenDeath, 2, 90.0, 0.0));
  PipelineSystem sys(cell_config(shape, plan));
  const RunResult r = sys.run();
  expect_invariants(r, shape);
  EXPECT_TRUE(r.nodes[0].migrated);
  EXPECT_TRUE(r.nodes[1].died);
  // Completions continue past the death: the survivor runs the chain.
  EXPECT_GT(r.last_completion.value(), 90.0);
}

// A brownout is transient: after the node returns, the upstream must keep
// detection armed and the system keeps completing frames (either via
// migration during the outage or re-detection after it).
TEST(FaultMatrixRecovery, BrownoutDoesNotWedgeThePipeline) {
  const Shape shape{"acks", 2, true, 0};
  fault::FaultPlan plan;
  plan.events.push_back(event(fault::FaultKind::kBrownout, 2, 60.0, 30.0));
  PipelineSystem sys(cell_config(shape, plan));
  const RunResult r = sys.run();
  expect_invariants(r, shape);
  EXPECT_GT(r.last_completion.value(), 90.0);
}

// Fleet row: sudden-death of the *current* cluster head, targeted by role
// rather than address, mid-epoch. The coordinator must write off the dead
// head's pending readings, re-elect within the same epoch (an extra
// election beyond the per-epoch schedule), and keep completing uplinks —
// all under the builtin fleet invariants armed at fail severity.
TEST(FaultMatrixRecovery, FleetReelectsAfterHeadRoleSuddenDeath) {
  obs::Registry reg;
  FleetConfig fc;
  fc.cpu = &cpu::itsy_sa1100();
  fc.link.line_rate = kilobits_per_second(2304.0);
  fc.link.effective_rate = kilobits_per_second(2000.0);
  fc.link.startup_min = milliseconds(1.0);
  fc.link.startup_max = milliseconds(2.0);
  fc.battery_factory = [] {
    return battery::make_ideal_battery(milliamp_hours(5.0));
  };
  fc.topology = Topology::fleet(12, 2);
  fc.round_period = seconds(0.5);
  fc.epoch_rounds = 10;
  fc.head_levels = {fc.cpu->top_level(), 0, 0};
  fc.max_rounds = 60;
  fc.metrics = &reg;
  fc.builtin_monitor_severity = obs::Severity::kFail;
  // Mid-epoch (round 5 of 10): whoever heads cluster 0 dies for good.
  fault::FaultEvent death =
      event(fault::FaultKind::kSuddenDeath, 0, 2.75, 0.0);
  death.role = "head0";
  fc.faults.events.push_back(death);

  FleetSystem sys(std::move(fc));
  const FleetResult r = sys.run();

  EXPECT_EQ(r.run.fault_injections, 1);
  EXPECT_EQ(r.nodes_died, 1);
  EXPECT_GT(r.first_death.value(), 0.0);
  // One election per cluster per epoch, plus the mid-epoch replacement.
  EXPECT_EQ(r.elections, r.epochs * 2 + 1);
  EXPECT_EQ(r.head_conflicts, 0);
  // Uplinks keep landing after the death: the replacement head runs the
  // cluster for the rest of the run.
  EXPECT_GT(r.run.last_completion.value(), r.first_death.value());
  // The dead head's unforwarded readings are written off, never phantom-
  // completed; accounting stays conservative.
  EXPECT_GT(r.run.frames_lost, 0);
  EXPECT_LE(r.run.frames_lost, r.run.frames_sent);
  EXPECT_LE(r.run.frames_completed, r.run.frames_sent);
  // Builtin fleet invariants (head uniqueness, alive-count monotone under
  // sudden death) held at fail severity.
  EXPECT_GT(r.run.monitor_checks, 0);
  EXPECT_FALSE(r.run.monitors_failed);
  EXPECT_TRUE(r.run.violations.empty());
}

// ---------------------------------------------------------------------------
// Golden no-op: with no fault plan the fault layer must not exist at all.
// The frame counts below are pinned from the fault-free build's
// fig10_experiments output; any drift means the default path changed.

TEST(FaultNoop, EmptyPlanPinsFig10FrameCounts) {
  ExperimentSuite suite;
  const auto specs = paper_experiments();
  auto find = [&](const std::string& id) -> const ExperimentSpec& {
    for (const auto& s : specs)
      if (s.id == id) return s;
    ADD_FAILURE() << "missing spec " << id;
    return specs.front();
  };
  EXPECT_EQ(suite.run(find("2A")).frames, 22368);
  EXPECT_EQ(suite.run(find("2B")).frames, 24696);
}

TEST(FaultNoop, UntriggeredPlanIsAnExactNoop) {
  // A plan whose only event fires long after battery death arms the
  // runtime (hub hooks live, queries run per message) but never opens a
  // window — the run must be *exactly* the fault-free run, not just close.
  ExperimentSuite suite;
  const auto specs = paper_experiments();
  ExperimentSpec spec;
  for (const auto& s : specs)
    if (s.id == "2B") spec = s;
  ASSERT_EQ(spec.id, "2B");

  const ExperimentResult bare = suite.run(spec);
  spec.fault_plan.events.push_back(
      event(fault::FaultKind::kLinkBlackout, 0, 1e9, 0.0));
  const ExperimentResult armed = suite.run(spec);

  EXPECT_EQ(bare.frames, armed.frames);
  EXPECT_DOUBLE_EQ(bare.battery_life.value(), armed.battery_life.value());
  ASSERT_EQ(bare.details.nodes.size(), armed.details.nodes.size());
  for (std::size_t i = 0; i < bare.details.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(bare.details.nodes[i].charge_used.value(),
                     armed.details.nodes[i].charge_used.value());
    EXPECT_DOUBLE_EQ(bare.details.nodes[i].death_time.value(),
                     armed.details.nodes[i].death_time.value());
    EXPECT_EQ(bare.details.nodes[i].migrated, armed.details.nodes[i].migrated);
  }
  EXPECT_EQ(armed.details.frames_lost, 0);
  EXPECT_EQ(armed.details.migration_retries, 0);
  EXPECT_EQ(armed.details.fault_injections, 0);
}

}  // namespace
}  // namespace deslp::core
