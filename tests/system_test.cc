// Integration tests for the PipelineSystem behaviours: schedule shape
// against the paper's timing diagrams, DES-vs-analytic agreement, rotation
// mechanics (Fig. 9), and failure recovery (§5.4).
#include <gtest/gtest.h>

#include <memory>

#include "battery/battery.h"
#include "battery/kibam.h"
#include "battery/load.h"
#include "core/experiment.h"
#include "core/system.h"
#include "task/plan.h"

namespace deslp::core {
namespace {

SystemConfig base_config() {
  SystemConfig sys;
  sys.cpu = &cpu::itsy_sa1100();
  sys.profile = &atr::itsy_atr_profile();
  sys.link = net::itsy_serial_link();
  sys.battery_factory = [] {
    return battery::make_ideal_battery(milliamp_hours(1e9));  // effectively
                                                              // infinite
  };
  sys.frame_delay = seconds(2.3);
  return sys;
}

TEST(System, SingleNodeBaselineSustainsFrameRate) {
  SystemConfig sys = base_config();
  sys.partition = task::Partition({0}, 4);
  sys.stage_levels = {{10, 10, 10}};
  sys.max_frames = 200;
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();
  EXPECT_EQ(r.frames_completed, 200);
  // 200 frames at one per 2.3 s: last completion near 200 * 2.3.
  EXPECT_NEAR(r.last_completion.value(), 200 * 2.3, 2.5);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_FALSE(r.nodes[0].died);
  // Almost no idle in the baseline (busy ~2.295 of every 2.3 s).
  EXPECT_LT(r.nodes[0].idle_time.value() / r.nodes[0].comm_time.value(),
            0.05);
}

TEST(System, TwoNodePipelineKeepsThroughputAndOverlaps) {
  SystemConfig sys = base_config();
  const auto part = selected_two_node_partition(*sys.cpu, *sys.profile,
                                                sys.link);
  sys.partition = part.partition;
  const int lv1 = part.stages[0].min_level;
  const int lv2 = part.stages[1].min_level;
  sys.stage_levels = {{lv1, lv1, lv1}, {lv2, lv2, lv2}};
  sys.max_frames = 100;
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();
  EXPECT_EQ(r.frames_completed, 100);
  // Pipeline startup adds ~1 frame of latency; throughput stays 1/D.
  EXPECT_NEAR(r.last_completion.value(), 100 * 2.3, 2.0 * 2.3 + 1.0);
}

TEST(System, DesMatchesAnalyticLifetimeForStaticSchedule) {
  // Experiment (1)-shaped run on a small battery: the DES lifetime (frames
  // * D) must match the analytic load-cycle lifetime within the startup
  // jitter tolerance.
  const double mah = 40.0;
  SystemConfig sys = base_config();
  sys.battery_factory = [mah] {
    return battery::make_kibam_battery(
        battery::KibamParams{milliamp_hours(mah), 0.3, 5e-4});
  };
  sys.partition = task::Partition({0}, 4);
  sys.stage_levels = {{10, 10, 10}};
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();

  net::SerialLink timer(net::itsy_serial_link());
  task::NodePlan plan;
  plan.recv_time = timer.expected_transaction_time(kilobytes(10.1));
  plan.send_time = timer.expected_transaction_time(kilobytes(0.1));
  plan.work = atr::itsy_atr_profile().total_work();
  plan.comp_level = plan.comm_level = plan.idle_level = 10;
  plan.frame_delay = seconds(2.3);
  auto b = battery::make_kibam_battery(
      battery::KibamParams{milliamp_hours(mah), 0.3, 5e-4});
  const battery::LifetimeResult analytic =
      battery::lifetime_under_cycle(*b, plan.load_cycle(*sys.cpu));

  EXPECT_NEAR(static_cast<double>(r.frames_completed),
              static_cast<double>(analytic.complete_cycles),
              static_cast<double>(analytic.complete_cycles) * 0.02 + 2.0);
}

TEST(System, RotationBalancesRolesExactly) {
  SystemConfig sys = base_config();
  const auto part = selected_two_node_partition(*sys.cpu, *sys.profile,
                                                sys.link);
  sys.partition = part.partition;
  sys.stage_levels = {{part.stages[0].min_level, 0, 0},
                      {part.stages[1].min_level, 0, 0}};
  sys.rotation_period = 10;
  sys.max_frames = 100;
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();
  EXPECT_EQ(r.frames_completed, 100);
  ASSERT_EQ(r.nodes.size(), 2u);
  // Every node changes role once per rotation window: 100 frames / period
  // 10 -> ~10 rotations each.
  EXPECT_NEAR(static_cast<double>(r.nodes[0].rotations), 10.0, 1.0);
  EXPECT_NEAR(static_cast<double>(r.nodes[1].rotations), 10.0, 1.0);
  // Both nodes spent similar time computing (roles alternated).
  EXPECT_NEAR(r.nodes[0].comp_time.value(), r.nodes[1].comp_time.value(),
              0.25 * r.nodes[0].comp_time.value());
}

TEST(System, RotationPreservesThroughput) {
  // §5.5: "There is no performance loss" — same completions with and
  // without rotation over the same horizon.
  auto run_with_period = [](long long period) {
    SystemConfig sys = base_config();
    const auto part = selected_two_node_partition(*sys.cpu, *sys.profile,
                                                  sys.link);
    sys.partition = part.partition;
    sys.stage_levels = {{part.stages[0].min_level, 0, 0},
                        {part.stages[1].min_level, 0, 0}};
    sys.rotation_period = period;
    sys.max_frames = 120;
    PipelineSystem system(std::move(sys));
    return system.run();
  };
  const RunResult with = run_with_period(10);
  const RunResult without = run_with_period(0);
  EXPECT_EQ(with.frames_completed, without.frames_completed);
  EXPECT_NEAR(with.last_completion.value(), without.last_completion.value(),
              3.0 * 2.3);
}

TEST(System, RecoveryMigratesAfterDownstreamDeath) {
  SystemConfig sys = base_config();
  const auto part = selected_two_node_partition(*sys.cpu, *sys.profile,
                                                sys.link);
  sys.partition = part.partition;
  sys.stage_levels = {{cpu::sa1100_level_mhz(73.7), 0, 0},
                      {cpu::sa1100_level_mhz(118.0), 0, 0}};
  sys.use_acks = true;
  sys.migrated_levels = {sys.cpu->top_level(), 0, 0};
  // Node batteries sized so Node2 (the heavy stage) dies quickly while
  // Node1 carries on.
  sys.battery_factory = [] {
    return battery::make_kibam_battery(
        battery::KibamParams{milliamp_hours(30.0), 0.3, 5e-4});
  };
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_TRUE(r.nodes[1].died);               // Node2 first
  EXPECT_TRUE(r.nodes[0].migrated);           // Node1 took over
  EXPECT_TRUE(r.nodes[0].died);               // and eventually died too
  EXPECT_GT(r.nodes[0].death_time.value(), r.nodes[1].death_time.value());
  // Completions continued past Node2's death.
  EXPECT_GT(r.last_completion.value(), r.nodes[1].death_time.value() + 2.3);
}

TEST(System, RecoveryHandlesUpstreamDeathWithHostRedirect) {
  // The mirror failure: Node1 (the stage fed by the host) dies first.
  // Node2 must detect the upstream silence, migrate, announce itself to
  // the host, and receive redirected frames.
  SystemConfig sys = base_config();
  const auto part = selected_two_node_partition(*sys.cpu, *sys.profile,
                                                sys.link);
  sys.partition = part.partition;
  sys.stage_levels = {{cpu::sa1100_level_mhz(73.7), 0, 0},
                      {cpu::sa1100_level_mhz(118.0), 0, 0}};
  sys.use_acks = true;
  sys.migrated_levels = {sys.cpu->top_level(), 0, 0};
  // Node1 gets a tiny battery, Node2 a large one.
  int built = 0;
  sys.battery_factory = [&built] {
    const double mah = built++ == 0 ? 3.0 : 60.0;
    return battery::make_kibam_battery(
        battery::KibamParams{milliamp_hours(mah), 0.3, 5e-4});
  };
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_TRUE(r.nodes[0].died);
  EXPECT_TRUE(r.nodes[1].migrated);
  // Node2 produced whole-chain results after Node1's death.
  EXPECT_GT(r.last_completion.value(),
            r.nodes[0].death_time.value() + 3 * 2.3);
  EXPECT_GT(r.frames_completed, 10);
}

TEST(System, WithoutRecoveryPipelineStallsAtFirstDeath) {
  SystemConfig sys = base_config();
  const auto part = selected_two_node_partition(*sys.cpu, *sys.profile,
                                                sys.link);
  sys.partition = part.partition;
  const int lv1 = part.stages[0].min_level;
  const int lv2 = part.stages[1].min_level;
  sys.stage_levels = {{lv1, lv1, lv1}, {lv2, lv2, lv2}};
  sys.battery_factory = [] {
    return battery::make_kibam_battery(
        battery::KibamParams{milliamp_hours(30.0), 0.3, 5e-4});
  };
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_TRUE(r.nodes[1].died);
  // The paper's observation: the pipeline stalls while Node1 still has
  // plenty of charge.
  EXPECT_GT(r.nodes[0].final_soc, 0.3);
  EXPECT_LT(r.last_completion.value(), r.nodes[1].death_time.value() + 2.5);
}

TEST(System, ThreeNodeRotationGeneralizes) {
  // §5.5's procedure is defined for N nodes; run it on the best 3-stage
  // partition: throughput holds, all three nodes rotate once per window,
  // and their computation loads converge.
  SystemConfig sys = base_config();
  const auto analyses = task::analyze_all_partitions(
      *sys.profile, 3, *sys.cpu, sys.link, sys.frame_delay);
  const int best = task::best_partition_index(analyses);
  ASSERT_GE(best, 0);
  const auto& a = analyses[static_cast<std::size_t>(best)];
  sys.partition = a.partition;
  for (const auto& s : a.stages)
    sys.stage_levels.push_back({s.min_level, 0, 0});
  sys.rotation_period = 9;
  sys.max_frames = 180;
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();
  EXPECT_EQ(r.frames_completed, 180);
  ASSERT_EQ(r.nodes.size(), 3u);
  // 180 frames / period 9 -> ~20 rotations per node.
  for (const auto& n : r.nodes)
    EXPECT_NEAR(static_cast<double>(n.rotations), 20.0, 2.0) << n.name;
  // Computation time balances across the three nodes (each cycles through
  // every role).
  const double c0 = r.nodes[0].comp_time.value();
  for (const auto& n : r.nodes)
    EXPECT_NEAR(n.comp_time.value(), c0, 0.35 * c0) << n.name;
  // Throughput: last completion near 180 * D (pipeline depth slack).
  EXPECT_NEAR(r.last_completion.value(), 180 * 2.3, 4 * 2.3);
}


TEST(System, VariableWorkloadScalesDeterministically) {
  SystemConfig sys = base_config();
  sys.partition = task::Partition({0}, 4);
  sys.stage_levels = {{10, 0, 0}};
  sys.workload.enabled = true;
  sys.workload.min_scale = 0.5;
  sys.workload.max_scale = 1.0;
  sys.max_frames = 50;
  sys.record_trace = true;
  SystemConfig copy = sys;
  PipelineSystem a(std::move(sys));
  PipelineSystem b(std::move(copy));
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.frames_completed, 50);
  // Same seed -> identical runs.
  EXPECT_DOUBLE_EQ(ra.nodes[0].comp_time.value(),
                   rb.nodes[0].comp_time.value());
  // Scaled work: total PROC time strictly below the fixed-work 50 * 1.1 s.
  EXPECT_LT(ra.nodes[0].comp_time.value(), 50 * 1.1 * 0.999);
  EXPECT_GT(ra.nodes[0].comp_time.value(), 50 * 1.1 * 0.45);
}

TEST(System, AdaptiveLevelsMeetThroughputAndSaveCharge) {
  auto run_one = [](bool adaptive) {
    SystemConfig sys = base_config();
    sys.partition = task::Partition({0}, 4);
    sys.stage_levels = {{10, 0, 0}};
    sys.workload.enabled = true;
    sys.workload.min_scale = 0.3;
    sys.workload.max_scale = 1.0;
    sys.adaptive_levels = adaptive;
    sys.max_frames = 200;
    PipelineSystem system(std::move(sys));
    return system.run();
  };
  const RunResult fixed = run_one(false);
  const RunResult adaptive = run_one(true);
  // Throughput is preserved either way.
  EXPECT_EQ(fixed.frames_completed, 200);
  EXPECT_EQ(adaptive.frames_completed, 200);
  // Adaptive draws less charge for the same completed work.
  EXPECT_LT(adaptive.nodes[0].charge_used.value(),
            fixed.nodes[0].charge_used.value());
}

TEST(System, AdaptiveWithoutVariationMatchesMinFeasible) {
  // With constant work, the adaptive choice equals the static minimum
  // feasible level every frame; a single node needs the top level.
  SystemConfig sys = base_config();
  sys.partition = task::Partition({0}, 4);
  sys.stage_levels = {{10, 0, 0}};
  sys.adaptive_levels = true;
  sys.max_frames = 20;
  sys.record_trace = true;
  PipelineSystem system(std::move(sys));
  const RunResult r = system.run();
  EXPECT_EQ(r.frames_completed, 20);
  // PROC time equals 20 frames at 206.4 MHz, plus one PLL relock per
  // frame (the wire runs at level 0, so each PROC switches levels).
  EXPECT_NEAR(r.nodes[0].comp_time.value(),
              20 * (1.1 + cpu::itsy_sa1100().dvs_switch_latency().value()),
              1e-6);
}

TEST(System, TraceRecordsScheduleShape) {
  SystemConfig sys = base_config();
  sys.partition = task::Partition({0}, 4);
  sys.stage_levels = {{10, 10, 10}};
  sys.max_frames = 5;
  sys.record_trace = true;
  PipelineSystem system(std::move(sys));
  (void)system.run();
  const auto& trace = system.trace();
  // Fig. 2: RECV -> PROC -> SEND serialized per frame.
  const auto spans = trace.spans_for("Node1");
  ASSERT_GE(spans.size(), 15u);
  int recv = 0, proc = 0, send = 0;
  for (const auto& s : spans) {
    if (s.kind == "RECV") ++recv;
    if (s.kind == "PROC") ++proc;
    if (s.kind == "SEND") ++send;
  }
  EXPECT_EQ(recv, 5);
  EXPECT_EQ(proc, 5);
  EXPECT_EQ(send, 5);
  // PROC time per frame is 1.1 s at the top level.
  const sim::Dur proc_time = trace.time_in(
      "Node1", "PROC", sim::Time{0}, sim::Time{1'000'000'000'000});
  EXPECT_NEAR(sim::to_seconds(proc_time).value(), 5 * 1.1, 1e-6);
}

}  // namespace
}  // namespace deslp::core
