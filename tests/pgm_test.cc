#include <gtest/gtest.h>

#include <sstream>

#include "atr/pgm.h"
#include "util/rng.h"

namespace deslp::atr {
namespace {

TEST(Pgm, WriteHasValidHeader) {
  Image img(4, 2);
  img.at(0, 0) = 0.0f;
  img.at(3, 1) = 1.0f;
  std::ostringstream os;
  write_pgm(img, os);
  const std::string out = os.str();
  EXPECT_EQ(out.substr(0, 3), "P5\n");
  EXPECT_NE(out.find("4 2"), std::string::npos);
  EXPECT_NE(out.find("255"), std::string::npos);
}

TEST(Pgm, RoundTripPreservesStructure) {
  Rng rng(3);
  Image img(16, 12);
  img.add_gaussian_noise(rng, 1.0f);
  std::stringstream ss;
  write_pgm(img, ss);
  const auto back = read_pgm(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->width(), 16);
  EXPECT_EQ(back->height(), 12);
  // Values are min-max normalised on write, so compare rank correlation:
  // the brightest/darkest pixels must map to the extremes.
  int max_x = 0, max_y = 0;
  float best = -1e30f;
  for (int y = 0; y < 12; ++y)
    for (int x = 0; x < 16; ++x)
      if (img.at(x, y) > best) {
        best = img.at(x, y);
        max_x = x;
        max_y = y;
      }
  EXPECT_NEAR(back->at(max_x, max_y), 1.0f, 1e-6);
}

TEST(Pgm, ConstantImageMapsToMidGrey) {
  Image img(3, 3, 0.7f);
  std::stringstream ss;
  write_pgm(img, ss);
  const auto back = read_pgm(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(back->at(1, 1), 128.0f / 255.0f, 1e-6);
}

TEST(Pgm, ReadsAsciiP2) {
  std::stringstream ss("P2\n# comment line\n3 2\n10\n0 5 10\n10 5 0\n");
  const auto img = read_pgm(ss);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->width(), 3);
  EXPECT_EQ(img->height(), 2);
  EXPECT_FLOAT_EQ(img->at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img->at(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(img->at(2, 0), 1.0f);
}

TEST(Pgm, RejectsMalformedInput) {
  std::string error;
  {
    std::stringstream ss("P6\n1 1\n255\nx");
    EXPECT_FALSE(read_pgm(ss, &error).has_value());
    EXPECT_NE(error.find("P5 or P2"), std::string::npos);
  }
  {
    std::stringstream ss("P5\n0 2\n255\n");
    EXPECT_FALSE(read_pgm(ss, &error).has_value());
  }
  {
    std::stringstream ss("P5\n2 2\n255\nab");  // truncated pixels
    EXPECT_FALSE(read_pgm(ss, &error).has_value());
    EXPECT_NE(error.find("truncated"), std::string::npos);
  }
  {
    std::stringstream ss("P5\n2 2\n70000\n");  // 16-bit unsupported
    EXPECT_FALSE(read_pgm(ss, &error).has_value());
  }
}

TEST(Pgm, FileRoundTrip) {
  Image img(8, 8);
  img.at(4, 4) = 1.0f;
  const std::string path = "/tmp/deslp_pgm_test.pgm";
  ASSERT_TRUE(write_pgm_file(img, path));
  const auto back = read_pgm_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->width(), 8);
  EXPECT_NEAR(back->at(4, 4), 1.0f, 1e-6);
}

TEST(Pgm, MissingFileFails) {
  std::string error;
  EXPECT_FALSE(read_pgm_file("/nonexistent.pgm", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace deslp::atr
