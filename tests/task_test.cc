#include <gtest/gtest.h>

#include "atr/profile.h"
#include "cpu/cpu.h"
#include "net/link.h"
#include "task/partition.h"
#include "task/plan.h"

namespace deslp::task {
namespace {

using cpu::itsy_sa1100;
using cpu::sa1100_level_mhz;

// --- partition structure -------------------------------------------------------

TEST(Partition, StageRanges) {
  Partition p({0, 1}, 4);  // (block0) (blocks 1..3)
  EXPECT_EQ(p.stage_count(), 2);
  EXPECT_EQ(p.first_of(0), 0);
  EXPECT_EQ(p.last_of(0), 0);
  EXPECT_EQ(p.first_of(1), 1);
  EXPECT_EQ(p.last_of(1), 3);
  EXPECT_EQ(p.stage_of(0), 0);
  EXPECT_EQ(p.stage_of(1), 1);
  EXPECT_EQ(p.stage_of(3), 1);
}

TEST(Partition, SingleStageCoversAll) {
  Partition p({0}, 4);
  EXPECT_EQ(p.stage_count(), 1);
  EXPECT_EQ(p.last_of(0), 3);
}

TEST(Partition, LabelNamesBlocks) {
  Partition p({0, 1}, 4);
  const std::string label = p.label(atr::paper_raw_profile());
  EXPECT_EQ(label, "(Target Detection) (FFT + IFFT + Compute Distance)");
}

TEST(Partition, EnumerationCounts) {
  // C(n-1, k-1) contiguous partitions of n blocks into k stages.
  EXPECT_EQ(enumerate_partitions(4, 1).size(), 1u);
  EXPECT_EQ(enumerate_partitions(4, 2).size(), 3u);
  EXPECT_EQ(enumerate_partitions(4, 3).size(), 3u);
  EXPECT_EQ(enumerate_partitions(4, 4).size(), 1u);
  EXPECT_EQ(enumerate_partitions(6, 3).size(), 10u);
}

TEST(Partition, EnumerationIsExhaustiveAndValid) {
  const auto parts = enumerate_partitions(5, 3);
  for (const auto& p : parts) {
    EXPECT_EQ(p.stage_count(), 3);
    // Stages tile [0, 5) contiguously.
    EXPECT_EQ(p.first_of(0), 0);
    for (int s = 0; s + 1 < 3; ++s)
      EXPECT_EQ(p.last_of(s) + 1, p.first_of(s + 1));
    EXPECT_EQ(p.last_of(2), 4);
  }
}

// --- Fig. 8 analysis --------------------------------------------------------------

class Fig8Test : public ::testing::Test {
 protected:
  const atr::AtrProfile& profile_ = atr::itsy_atr_profile();
  const cpu::CpuSpec& cpu_ = itsy_sa1100();
  const net::LinkSpec link_ = net::itsy_serial_link();
  const Seconds d_ = seconds(2.3);
};

TEST_F(Fig8Test, SchemeOneIsFeasibleAtPaperLevels) {
  // (Target Detect.) (FFT + IFFT + Comp. Distance) -> 59 and 103.2 MHz.
  const auto a =
      analyze_partition(profile_, Partition({0, 1}, 4), cpu_, link_, d_);
  ASSERT_TRUE(a.feasible());
  EXPECT_EQ(a.stages[0].min_level, sa1100_level_mhz(59.0));
  EXPECT_EQ(a.stages[1].min_level, sa1100_level_mhz(103.2));
}

TEST_F(Fig8Test, SchemeOnePayloadsMatchPaper) {
  const auto a =
      analyze_partition(profile_, Partition({0, 1}, 4), cpu_, link_, d_);
  // Fig. 8: Node1 handles 10.7 KB (10.1 in + 0.6 out), Node2 0.7 KB.
  EXPECT_NEAR(to_kilobytes(a.node_payload(0)), 10.7, 0.05);
  EXPECT_NEAR(to_kilobytes(a.node_payload(1)), 0.7, 0.05);
  EXPECT_NEAR(to_kilobytes(a.total_internal_payload()), 0.6, 0.01);
}

TEST_F(Fig8Test, SchemeTwoNeedsHighClockRates) {
  // (TD + FFT) (IFFT + CD): both nodes must run much faster because of the
  // 7.5 KB internal transfer (paper: 191.7 / 132.7 MHz).
  const auto a =
      analyze_partition(profile_, Partition({0, 2}, 4), cpu_, link_, d_);
  EXPECT_NEAR(to_kilobytes(a.total_internal_payload()), 7.5, 0.01);
  ASSERT_TRUE(a.feasible());
  EXPECT_GE(a.stages[0].min_level, sa1100_level_mhz(162.2));
  EXPECT_GE(a.stages[1].min_level, sa1100_level_mhz(103.2));
}

TEST_F(Fig8Test, SchemeThreeIsInfeasible) {
  // (TD + FFT + IFFT) (CD): Node1 would need > 206.4 MHz.
  const auto a =
      analyze_partition(profile_, Partition({0, 3}, 4), cpu_, link_, d_);
  EXPECT_FALSE(a.feasible());
  EXPECT_EQ(a.stages[0].min_level, -1);
  EXPECT_GT(a.stages[0].required_frequency, cpu_.max_frequency());
  // Node2 alone would be fine at a low level.
  EXPECT_LE(a.stages[1].min_level, sa1100_level_mhz(88.5));
}

TEST_F(Fig8Test, PaperRawProfileEchoesThe380MhzClaim) {
  // With Fig. 6's raw block times the paper says scheme 3 needs ~380 MHz.
  const auto a = analyze_partition(atr::paper_raw_profile(),
                                   Partition({0, 3}, 4), cpu_, link_, d_);
  EXPECT_FALSE(a.feasible());
  const double mhz = to_megahertz(a.stages[0].required_frequency);
  EXPECT_GT(mhz, 300.0);
  EXPECT_LT(mhz, 460.0);
}

TEST_F(Fig8Test, BestPartitionIsSchemeOne) {
  const auto all = analyze_all_partitions(profile_, 2, cpu_, link_, d_);
  ASSERT_EQ(all.size(), 3u);
  const int best = best_partition_index(all);
  ASSERT_GE(best, 0);
  EXPECT_EQ(all[static_cast<std::size_t>(best)].partition.first_of(1), 1);
}

TEST_F(Fig8Test, BestPartitionIndexHandlesAllInfeasible) {
  // With an impossibly tight frame delay nothing is feasible.
  const auto all =
      analyze_all_partitions(profile_, 2, cpu_, link_, seconds(0.2));
  EXPECT_EQ(best_partition_index(all), -1);
}

TEST_F(Fig8Test, StageAnalysisBudgetsAreConsistent) {
  const auto a =
      analyze_partition(profile_, Partition({0, 1}, 4), cpu_, link_, d_);
  for (const auto& s : a.stages) {
    EXPECT_NEAR(
        (s.recv_time + s.send_time + s.compute_budget).value(), 2.3, 1e-9);
    EXPECT_GT(s.work.value(), 0.0);
  }
}

// --- node plans -------------------------------------------------------------------

TEST(NodePlan, BusyAndIdlePartitionTheFrame) {
  NodePlan plan;
  plan.recv_time = seconds(1.1);
  plan.send_time = seconds(0.1);
  plan.work = work(megahertz(206.4), seconds(0.9));
  plan.comp_level = itsy_sa1100().top_level();
  plan.frame_delay = seconds(2.3);
  EXPECT_TRUE(plan.feasible(itsy_sa1100()));
  EXPECT_NEAR(plan.busy_time(itsy_sa1100()).value(), 2.1, 1e-9);
  EXPECT_NEAR(plan.idle_time(itsy_sa1100()).value(), 0.2, 1e-9);
}

TEST(NodePlan, InfeasibleWhenBusyExceedsFrame) {
  NodePlan plan;
  plan.recv_time = seconds(1.1);
  plan.send_time = seconds(0.1);
  plan.work = work(megahertz(206.4), seconds(1.5));
  plan.comp_level = itsy_sa1100().top_level();
  plan.frame_delay = seconds(2.3);
  EXPECT_FALSE(plan.feasible(itsy_sa1100()));
  EXPECT_DOUBLE_EQ(plan.idle_time(itsy_sa1100()).value(), 0.0);
}

TEST(NodePlan, LoadCycleSegmentsAndCurrents) {
  const cpu::CpuSpec& c = itsy_sa1100();
  NodePlan plan;
  plan.recv_time = seconds(1.1);
  plan.send_time = seconds(0.1);
  plan.work = work(megahertz(206.4), seconds(0.9));
  plan.comp_level = c.top_level();
  plan.comm_level = 0;  // DVS during I/O
  plan.idle_level = 0;
  plan.frame_delay = seconds(2.3);
  const auto cycle = plan.load_cycle(c);
  ASSERT_EQ(cycle.size(), 4u);  // recv, comp, send, idle
  EXPECT_DOUBLE_EQ(cycle[0].current.value(),
                   c.current(cpu::Mode::kComm, 0).value());
  EXPECT_DOUBLE_EQ(cycle[1].current.value(),
                   c.current(cpu::Mode::kComp, c.top_level()).value());
  EXPECT_DOUBLE_EQ(cycle[3].current.value(),
                   c.current(cpu::Mode::kIdle, 0).value());
  double total = 0.0;
  for (const auto& ph : cycle) total += ph.duration.value();
  EXPECT_NEAR(total, 2.3, 1e-9);
}

TEST(NodePlan, ContinuousModeHasNoIdle) {
  NodePlan plan;
  plan.work = work(megahertz(206.4), seconds(1.1));
  plan.comp_level = itsy_sa1100().top_level();
  plan.frame_delay = seconds(0.0);
  const auto cycle = plan.load_cycle(itsy_sa1100());
  ASSERT_EQ(cycle.size(), 1u);
  EXPECT_NEAR(cycle[0].duration.value(), 1.1, 1e-9);
}

TEST(NodePlan, AverageCurrentIsTimeWeighted) {
  const cpu::CpuSpec& c = itsy_sa1100();
  NodePlan plan;
  plan.recv_time = seconds(1.15);
  plan.send_time = seconds(0.0);
  plan.work = work(c.level(10).frequency, seconds(1.15));
  plan.comp_level = 10;
  plan.comm_level = 10;
  plan.frame_delay = seconds(2.3);
  const double expect =
      0.5 * (c.current(cpu::Mode::kComm, 10).value() +
             c.current(cpu::Mode::kComp, 10).value());
  EXPECT_NEAR(plan.average_current(c).value(), expect, 1e-9);
}

}  // namespace
}  // namespace deslp::task
