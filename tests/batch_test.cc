// ThreadPool and BatchRunner: the parallel batch path must complete all
// work, propagate failures deterministically, and — the contract the whole
// PR rests on — produce results bitwise identical to the sequential path
// for any --jobs value (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/experiment.h"
#include "util/thread_pool.h"

namespace deslp {
namespace {

// --- ThreadPool ---------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  util::ThreadPool pool(4);
  std::vector<int> done(64, 0);
  try {
    pool.parallel_for(done.size(), [&done](std::size_t i) {
      if (i == 7 || i == 40) throw std::runtime_error("item " +
                                                      std::to_string(i));
      done[i] = 1;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "item 7");  // by index, not by completion time
  }
  // Every non-throwing item still ran: a failure never half-finishes a batch.
  EXPECT_EQ(std::accumulate(done.begin(), done.end(), 0), 62);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), util::ThreadPool::default_thread_count());
  EXPECT_GE(pool.thread_count(), 1);
}

// --- BatchRunner --------------------------------------------------------------

TEST(BatchRunner, SequentialWhenJobsIsOne) {
  core::BatchRunner runner(core::BatchOptions{.jobs = 1});
  EXPECT_EQ(runner.jobs(), 1);
  std::vector<std::size_t> order;
  runner.run(5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(runner.last_wall_ms().size(), 5u);
}

TEST(BatchRunner, MapPreservesIndexOrderForAnyJobs) {
  core::BatchRunner seq(core::BatchOptions{.jobs = 1});
  core::BatchRunner par(core::BatchOptions{.jobs = 4});
  EXPECT_EQ(par.jobs(), 4);
  const std::function<std::string(std::size_t)> fn = [](std::size_t i) {
    return "item-" + std::to_string(i * i);
  };
  const auto a = seq.map<std::string>(50, fn);
  const auto b = par.map<std::string>(50, fn);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[7], "item-49");
}

TEST(BatchRunner, MapWorksForNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  core::BatchRunner runner(core::BatchOptions{.jobs = 2});
  const auto out = runner.map<NoDefault>(
      8, [](std::size_t i) { return NoDefault(static_cast<int>(i) + 1); });
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[7].value, 8);
}

// --- The determinism contract, end to end -------------------------------------

// The full 0A-2C paper suite, sequential vs eight workers: every field the
// reproduction reports must match exactly (not approximately).
TEST(BatchRunner, FullSuiteIdenticalAcrossJobCounts) {
  const auto specs = core::paper_experiments();

  core::ExperimentSuite::Options seq_opt;
  seq_opt.jobs = 1;
  core::ExperimentSuite seq_suite(seq_opt);
  const auto seq = seq_suite.run_all(specs);

  core::ExperimentSuite::Options par_opt;
  par_opt.jobs = 8;
  core::ExperimentSuite par_suite(par_opt);
  const auto par = par_suite.run_all(specs);

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE(seq[i].id);
    EXPECT_EQ(seq[i].id, par[i].id);
    EXPECT_EQ(seq[i].frames, par[i].frames);
    // Bitwise equality, not EXPECT_NEAR: the parallel path must not change
    // a single operation in any run.
    EXPECT_EQ(seq[i].battery_life.value(), par[i].battery_life.value());
    EXPECT_EQ(seq[i].rnorm, par[i].rnorm);
    ASSERT_EQ(seq[i].details.nodes.size(), par[i].details.nodes.size());
    for (std::size_t n = 0; n < seq[i].details.nodes.size(); ++n) {
      EXPECT_EQ(seq[i].details.nodes[n].final_soc,
                par[i].details.nodes[n].final_soc);
    }
  }
}

}  // namespace
}  // namespace deslp
