// Clean fixture mirroring the PR 7 hot-path headers (battery/bank.h,
// util/arena.h, util/ring.h, core/node_state.h): SoA arrays stepped in
// bulk, a recycling pool over a slab arena, and packed per-node state.
// Pins that the linter stays quiet on these idioms:
//   - float arithmetic on time/energy-like names without ==/!= (float-eq
//     must not fire on <, *, or fma-style updates);
//   - comment/string mentions of banned tokens — std::steady_clock reads
//     and std::random_device belong in prose here, not findings;
//   - placement new, alignas, and power-of-two mask math.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace lintfix {

// "We considered timing this with std::chrono::steady_clock::now()" is a
// sentence, not a wall-clock read.
struct SoaBank {
  std::vector<double> charge_available;
  std::vector<double> charge_bound;

  void advance_all(const std::vector<double>& loads, double dt) {
    const char* note = "seeded, never std::random_device";
    (void)note;
    for (std::size_t i = 0; i < charge_available.size(); ++i) {
      const double drawn = loads[i] * dt;
      // Threshold comparisons on floating state are fine; only ==/!= are
      // flagged.
      if (charge_available[i] < drawn) {
        charge_available[i] = 0.0;
      } else {
        charge_available[i] -= drawn;
        charge_bound[i] += 0.5 * drawn;
      }
    }
  }
};

class SlotPool {
 public:
  static constexpr std::size_t kSlots = 16;  // power of two: index is a mask

  void* acquire() {
    const std::size_t slot = next_++ & (kSlots - 1);
    return ::new (static_cast<void*>(&storage_[slot * kStride])) char[kStride];
  }

 private:
  static constexpr std::size_t kStride = 64;
  alignas(std::max_align_t) char storage_[kSlots * kStride]{};
  std::size_t next_ = 0;
};

struct PackedNodeHot {
  std::uint32_t pending_frames = 0;
  std::uint16_t dvs_level = 0;
  std::uint8_t powered = 1;
};

}  // namespace lintfix
