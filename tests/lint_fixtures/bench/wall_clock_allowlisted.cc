// Fixture: files under a bench/ prefix may read the wall clock without any
// annotation — benchmarks time things by design (PATH_ALLOWLIST).
#include <chrono>

double bench_elapsed() {
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(end - start).count();
}
