// raw-lock-decl clean fixture: the annotated util wrappers are the
// sanctioned spelling. The comment and string mention std::mutex and
// std::lock_guard<std::mutex> to pin the stripper.
namespace util {
class Mutex {
 public:
  void lock() {}
  void unlock() {}
};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  Mutex& mu_;
};
}  // namespace util

namespace deslp::fixture {

util::Mutex g_state_mutex;

const char* describe() {
  util::MutexLock lock(g_state_mutex);
  return "annotated wrapper instead of std::lock_guard<std::mutex>";
}

}  // namespace deslp::fixture
