// Fixture: inline allow() neutralises a wall-clock finding, both in the
// trailing same-line form and on a comment-only line directly above.
#include <chrono>

double measure() {
  // deslp-lint: allow(wall-clock): fixture for the line-above form
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();  // deslp-lint: allow(wall-clock): same-line form
  return std::chrono::duration<double>(end - start).count();
}
