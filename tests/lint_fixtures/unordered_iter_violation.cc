// Fixture: iterating an unordered container (directly, via .begin(), or
// through a type alias) must be flagged — the order feeds output.
#include <string>
#include <unordered_map>
#include <unordered_set>

using Index = std::unordered_map<int, int>;

struct Report {
  std::unordered_map<std::string, double> totals_;
  std::unordered_set<int> seen_;
  Index index_;

  double sum() const {
    double acc = 0.0;
    for (const auto& [key, value] : totals_) acc += value;  // expect-lint: unordered-iter
    for (int id : seen_) acc += id;                         // expect-lint: unordered-iter
    for (const auto& [k, v] : index_) acc += v;             // expect-lint: unordered-iter
    for (auto it = totals_.begin(); it != totals_.end(); ++it) acc += 1.0;  // expect-lint: unordered-iter
    return acc;
  }
};
