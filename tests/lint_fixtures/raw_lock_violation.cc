// raw-lock-decl fixtures: bare std synchronization primitives carry no
// compiler-checked relationship to the state they guard; util/mutex.h's
// annotated wrappers do.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace deslp::fixture {

std::mutex queue_mutex;  // expect-lint: raw-lock-decl

std::shared_mutex table_mutex;  // expect-lint: raw-lock-decl

std::condition_variable queue_cv;  // expect-lint: raw-lock-decl

int drain() {
  std::lock_guard<std::mutex> lock(queue_mutex);  // expect-lint: raw-lock-decl
  return 0;
}

int peek() {
  std::shared_lock lock(table_mutex);  // expect-lint: raw-lock-decl
  return 1;
}

}  // namespace deslp::fixture
