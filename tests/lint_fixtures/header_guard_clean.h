// Fixture: the project convention — a leading comment then #pragma once.
#pragma once

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
