// Fixture: every nondeterministic randomness source must be flagged.
#include <cstdlib>
#include <random>

unsigned roll_the_dice() {
  std::random_device rd;               // expect-lint: unseeded-random
  std::mt19937 gen;                    // expect-lint: unseeded-random
  srand(42);                           // expect-lint: unseeded-random
  unsigned r = rand();                 // expect-lint: unseeded-random
  return rd() + gen() + r;
}
