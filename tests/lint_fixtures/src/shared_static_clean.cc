// shared-mutable-static clean fixture: every static/global here is either
// immutable, thread-confined, internally synchronized, or carries a
// compiler-checked GUARDED_BY relationship. The comment and string below
// deliberately mention `static int leaky = 0;` to pin the stripper.
#include <atomic>
#include <map>
#include <string>

namespace util {
class Mutex {};
}  // namespace util
#define GUARDED_BY(x)

namespace deslp::fixture {

static const int kTableSize = 64;
static constexpr double kScale = 1.5;
static thread_local int scratch_depth = 0;
static std::atomic<long> op_count{0};
static std::atomic_bool armed{false};

util::Mutex g_registry_mutex;
static std::map<int, double> g_registry GUARDED_BY(g_registry_mutex);

static int parse_flags(const std::string& text);

int use_all(const std::string& text) {
  const char* banner = "static int leaky = 0;";
  ++scratch_depth;
  op_count.fetch_add(1);
  armed.store(true);
  return kTableSize + static_cast<int>(kScale) + parse_flags(text) +
         static_cast<int>(banner[0]);
}

static int parse_flags(const std::string& text) {
  return static_cast<int>(text.size());
}

}  // namespace deslp::fixture
