// shared-mutable-static fixtures: writable statics/globals with no
// compiler-checked guard relationship. (Scoped rule: this file lives under
// a src/ prefix so the PATH_SCOPE entry applies.)
#include <map>
#include <vector>

namespace deslp::fixture {

static long total_energy = 0;  // expect-lint: shared-mutable-static

static std::map<int, double> cache_by_size;  // expect-lint: shared-mutable-static

double g_scale_factor = 1.0;  // expect-lint: shared-mutable-static

std::vector<int> g_pending_ids;  // expect-lint: shared-mutable-static

long bump() {
  static long calls = 0;  // expect-lint: shared-mutable-static
  return ++calls;
}

}  // namespace deslp::fixture
