// layer-dag fixture: cycle_a.h and cycle_b.h include each other. Same-layer
// includes pass the layer-edge check, but the file-level cycle check must
// still reject them; the finding anchors here (lexicographically smallest
// member of the cycle, at its first include into it).
#pragma once

#include "sim/cycle_b.h"  // expect-lint: layer-dag

namespace deslp::sim {

struct CycleA {
  int a = 0;
};

}  // namespace deslp::sim
