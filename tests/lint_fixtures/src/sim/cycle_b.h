// layer-dag fixture: second half of the cycle_a.h <-> cycle_b.h include
// cycle. The single cycle finding anchors in cycle_a.h, so no marker here.
#pragma once

#include "sim/cycle_a.h"

namespace deslp::sim {

struct CycleB {
  int b = 0;
};

}  // namespace deslp::sim
