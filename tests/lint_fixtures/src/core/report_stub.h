// layer-dag fixture: a clean core-layer header. core sits at the top of the
// DAG, so anything may be included from here — and nothing below core may
// include this file (layer_violation.h tries and is flagged).
#pragma once

namespace deslp::core {

struct ReportStub {
  int rows = 0;
};

}  // namespace deslp::core
