// PATH_ALLOWLIST fixture: src/util/mutex.h is the one place allowed to hold
// raw std primitives — it is the wrapper that gives everything else the
// annotated spelling. No expect-lint markers: raw-lock-decl must stay
// silent here.
#pragma once

#include <mutex>
#include <shared_mutex>

namespace deslp::util {

class Mutex {
 public:
  void lock() { m_.lock(); }
  void unlock() { m_.unlock(); }

 private:
  std::mutex m_;
};

}  // namespace deslp::util
