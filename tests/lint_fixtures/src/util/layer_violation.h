// layer-dag fixture: util is the bottom layer and may include nothing from
// the project, so reaching up into core/ is a layer violation.
#pragma once

#include "core/report_stub.h"  // expect-lint: layer-dag

namespace deslp::util {

inline int stub_rows(const core::ReportStub& r) { return r.rows; }

}  // namespace deslp::util
