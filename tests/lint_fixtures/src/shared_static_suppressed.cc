// shared-mutable-static suppressed fixture: real violations neutralised by
// inline allows (same-line and line-above forms), mirroring the justified
// allow on the atr template-spectrum cache singleton.
#include <map>

namespace deslp::fixture {

static long fallback_count = 0;  // deslp-lint: allow(shared-mutable-static): test-only tally

// deslp-lint: allow(shared-mutable-static): internally synchronized singleton
static std::map<int, double> g_spectrum_cache_stub;

long touch() {
  g_spectrum_cache_stub[0] = 1.0;
  return ++fallback_count;
}

}  // namespace deslp::fixture
