// Fixture: ordered-map iteration, point lookups into unordered containers,
// and the sort-the-keys-first pattern are all fine.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

double report(const std::map<std::string, double>& ordered,
              const std::unordered_map<std::string, double>& fast) {
  double acc = 0.0;
  for (const auto& [key, value] : ordered) acc += value;
  if (auto it = fast.find("total"); it != fast.end()) acc += it->second;
  std::vector<std::string> keys;
  keys.reserve(fast.size());
  for (std::size_t i = 0; i < keys.size(); ++i) acc += fast.at(keys[i]);
  std::sort(keys.begin(), keys.end());
  return acc;
}
