// Fixture: integer comparisons, epsilon comparisons, operator== definitions
// and float literals in *other* operands of the same expression are fine.
#include <cmath>
#include <cstdint>

struct Tick {
  std::int64_t ns = 0;
  std::int64_t nanos() const { return ns; }
  // An operator!= declaration is not a comparison site.
  bool operator!=(const Tick& o) const { return ns != o.ns; }
};

bool checks(Tick a, Tick b, int n, double x) {
  bool t1 = a.nanos() == b.nanos();      // integral sim-time compare: exact
  bool t2 = std::abs(x - 1.5) < 1e-9;    // epsilon compare, no ==
  bool t3 = n == 3 && x > 0.5;           // the == operands are integers
  return t1 || t2 || t3;
}
