// Fixture: explicitly seeded engines and the project Rng are fine; the
// words rand() / random_device inside comments or strings must not trip.
#include <cstdint>
#include <random>
#include <string>

std::uint64_t draw(std::uint64_t seed) {
  std::mt19937 seeded(static_cast<std::mt19937::result_type>(seed));
  std::mt19937_64 seeded64{seed};
  const std::string doc = "never calls rand() or std::random_device";
  // A comment mentioning rand() and random_device is not a violation.
  (void)doc;
  return seeded() + seeded64();
}
