// Fixture: qualified names and using-declarations are fine in headers;
// the words "using namespace" inside a comment or string must not trip.
#pragma once

#include <string>

namespace fixture {
using std::string;  // a using-declaration, not a using-directive

inline string motto() {
  // Saying "using namespace std;" in a comment is not a violation.
  return "never using namespace in a header";
}
}  // namespace fixture
