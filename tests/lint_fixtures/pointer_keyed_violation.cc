// pointer-keyed-container fixtures: ordering or hashing on an address makes
// iteration order allocator-dependent, which breaks bit-determinism.
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace deslp::fixture {

struct Node {
  int id = 0;
};

std::map<const Node*, int> rank_by_node;  // expect-lint: pointer-keyed-container

std::unordered_set<Node*> visited;  // expect-lint: pointer-keyed-container

std::set<Node*> frontier;  // expect-lint: pointer-keyed-container

std::unordered_map<Node*, double> weight;  // expect-lint: pointer-keyed-container

}  // namespace deslp::fixture
