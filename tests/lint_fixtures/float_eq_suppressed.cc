// Fixture: an annotated exact-sentinel comparison is not a finding.
bool drained(double soc) {
  // deslp-lint: allow(float-eq): exact zero-SoC sentinel, not a tolerance
  return soc == 0.0;
}

bool idle(double current_a) {
  return current_a == 0.0;  // deslp-lint: allow(float-eq): exact sentinel
}
