// expect-lint: header-guard
// Fixture: a header without #pragma once (even one with a classic #ifndef
// guard) violates the project convention; the finding anchors to line 1.
#ifndef DESLP_TESTS_LINT_FIXTURES_HEADER_GUARD_VIOLATION_H_
#define DESLP_TESTS_LINT_FIXTURES_HEADER_GUARD_VIOLATION_H_

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture

#endif  // DESLP_TESTS_LINT_FIXTURES_HEADER_GUARD_VIOLATION_H_
