// Fixture: every banned wall-clock read must be flagged.
#include <chrono>
#include <ctime>
#include <sys/time.h>

double sample_host_time() {
  auto a = std::chrono::system_clock::now();           // expect-lint: wall-clock
  auto b = std::chrono::steady_clock::now();           // expect-lint: wall-clock
  auto c = std::chrono::high_resolution_clock::now();  // expect-lint: wall-clock
  std::time_t t = time(nullptr);                       // expect-lint: wall-clock
  timeval tv;
  gettimeofday(&tv, nullptr);                          // expect-lint: wall-clock
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);                 // expect-lint: wall-clock
  std::clock_t ticks = clock();                        // expect-lint: wall-clock
  std::tm* local = localtime(&t);                      // expect-lint: wall-clock
  (void)a;
  (void)b;
  (void)c;
  (void)local;
  return static_cast<double>(ticks) + static_cast<double>(tv.tv_sec) +
         static_cast<double>(ts.tv_sec);
}
