// pointer-keyed-container clean fixture: pointers as mapped values are fine
// (iteration order follows the key); stable-id keys are the fix the rule
// message prescribes. The comment mentions std::map<Node*, int> to pin the
// stripper.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace deslp::fixture {

struct Node {
  int id = 0;
};

std::map<int, Node*> node_by_id;
std::map<std::string, const Node*> node_by_name;
std::unordered_map<std::string, std::vector<int>> ids_by_tag;

int lookup(int id) {
  auto it = node_by_id.find(id);
  return it == node_by_id.end() ? -1 : it->second->id;
}

}  // namespace deslp::fixture
