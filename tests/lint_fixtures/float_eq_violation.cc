// Fixture: ==/!= with a textually floating operand (float literal, unit
// .value(), or static_cast<double|float>) must be flagged.
namespace {
struct Sec {
  double v = 0.0;
  double value() const { return v; }
};
}  // namespace

bool checks(Sec t, double energy, double x, long n) {
  bool a = t.value() == 0.0;               // expect-lint: float-eq
  bool b = energy != 1.5;                  // expect-lint: float-eq
  bool c = x == static_cast<double>(n);    // expect-lint: float-eq
  bool d = 2.5e-3 != x;                    // expect-lint: float-eq
  return a || b || c || d;
}
