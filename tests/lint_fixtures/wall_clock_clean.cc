// Fixture: chrono *duration* arithmetic is fine — only clock reads are
// banned. Comments and strings mentioning system_clock, steady_clock or
// gettimeofday must not trip the stripper.
#include <chrono>
#include <string>

std::chrono::nanoseconds budget() {
  using namespace std::chrono_literals;  // .cc file: using namespace is fine
  const std::string doc = "uses no system_clock, honest: gettimeofday";
  auto d = 5ms + 3us;
  (void)doc;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d);
}
