// Fixture: `using namespace` in a header leaks into every includer.
#pragma once

#include <chrono>

using namespace std::chrono_literals;  // expect-lint: using-namespace-header

namespace fixture {
inline long wait_ns() {
  using namespace std::chrono;  // expect-lint: using-namespace-header
  return duration_cast<nanoseconds>(5ms).count();
}
}  // namespace fixture
