#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/scenario.h"
#include "net/reliable.h"
#include "obs/aggregate.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "sim/engine.h"
#include "util/config.h"

namespace deslp {
namespace {

// --- registry semantics -----------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  obs::Registry reg;
  obs::Counter c = reg.counter("a");
  c.inc();
  c.inc(2.5);
  EXPECT_TRUE(c.bound());
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  ASSERT_EQ(reg.snapshot().size(), 1u);
  EXPECT_EQ(reg.snapshot()[0].updates, 2);
}

TEST(Metrics, SameNameSharesSlot) {
  obs::Registry reg;
  obs::Counter a = reg.counter("x");
  obs::Counter b = reg.counter("x");
  a.inc();
  b.inc();
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, GaugeTracksValueAndHighWater) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("depth");
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
  g.set_max(100.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);  // set_max leaves the value alone
  EXPECT_DOUBLE_EQ(g.max(), 100.0);
}

TEST(Metrics, GaugeHighWaterTracksNegativeFirstValue) {
  obs::Registry reg;
  obs::Gauge g = reg.gauge("g");
  g.set(-5.0);
  EXPECT_DOUBLE_EQ(g.max(), -5.0);  // first set seeds the high-water mark
}

TEST(Metrics, HistogramBucketsByUpperBound) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("h", {1.0, 2.0});
  h.record(0.5, 10.0);  // bucket 0: v < 1.0
  h.record(1.0, 1.0);   // upper_bound => bucket 1: 1.0 <= v < 2.0
  h.record(5.0, 2.0);   // open overflow bucket
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].weights.size(), 3u);
  EXPECT_DOUBLE_EQ(snap[0].weights[0], 10.0);
  EXPECT_DOUBLE_EQ(snap[0].weights[1], 1.0);
  EXPECT_DOUBLE_EQ(snap[0].weights[2], 2.0);
  EXPECT_DOUBLE_EQ(snap[0].total_weight, 13.0);
  EXPECT_DOUBLE_EQ(snap[0].sum, 0.5 * 10.0 + 1.0 + 5.0 * 2.0);
}

TEST(Metrics, UnboundHandlesAreNoOps) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.set(1.0);
  h.record(1.0);
  EXPECT_FALSE(c.bound());
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
}

TEST(Metrics, DisabledRegistryHandsOutUnboundHandles) {
  obs::Registry reg(false);
  obs::Counter c = reg.counter("a");
  c.inc();
  EXPECT_FALSE(c.bound());
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, SnapshotIsNameSorted) {
  obs::Registry reg;
  (void)reg.counter("zeta");
  (void)reg.counter("alpha");
  (void)reg.gauge("mid");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
}

// --- JSON helpers -----------------------------------------------------------

TEST(ObsJson, EscapesControlAndQuotes) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ObsJson, NumberFormatting) {
  EXPECT_EQ(obs::json_number(42.0), "42");
  EXPECT_EQ(obs::json_number(-3.0), "-3");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST(Metrics, RegistryJsonGolden) {
  obs::Registry reg;
  reg.counter("events").inc(3.0);
  obs::Gauge g = reg.gauge("depth");
  g.set(2.0);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_EQ(os.str(),
            "{\n  \"metrics\": [\n"
            "    {\"name\":\"depth\",\"kind\":\"gauge\",\"value\":2,"
            "\"max\":2,\"updates\":1},\n"
            "    {\"name\":\"events\",\"kind\":\"counter\",\"value\":3,"
            "\"updates\":1}\n  ]\n}\n");
}

// --- engine + transport instrumentation ------------------------------------

TEST(ObsEngine, CountsScheduledFiredCancelled) {
  sim::Engine engine;
  obs::Registry reg;
  engine.bind_metrics(reg);
  int fired = 0;
  engine.post_at(sim::Time{100}, [&fired] { ++fired; });
  auto h = engine.schedule_at(sim::Time{200}, [&fired] { ++fired; });
  h.cancel();
  engine.run();
  EXPECT_EQ(fired, 1);
  const auto snap = reg.snapshot();
  const auto find = [&snap](const std::string& name) -> double {
    for (const auto& m : snap)
      if (m.name == name) return m.value;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(find("sim.events.scheduled"), 2.0);
  EXPECT_DOUBLE_EQ(find("sim.events.fired"), 1.0);
  EXPECT_DOUBLE_EQ(find("sim.events.cancelled"), 1.0);
  EXPECT_GE(find("sim.queue.depth"), 0.0);
}

TEST(ObsEngine, QueueDepthHighWaterMark) {
  sim::Engine engine;
  obs::Registry reg;
  engine.bind_metrics(reg);
  for (int i = 0; i < 5; ++i) engine.post_at(sim::Time{i * 10}, [] {});
  engine.run();
  obs::Gauge g = reg.gauge("sim.queue.depth");
  EXPECT_DOUBLE_EQ(g.max(), 5.0);
}

TEST(ObsEngine, CancelledCounterTicksAtCancelTime) {
  // Regression: the heap engine only counted a cancellation when the
  // tombstone surfaced during a run; a cancelled-then-never-run engine
  // reported zero. The counter now ticks when cancel() succeeds, and a
  // second cancel of the same handle does not double-count.
  sim::Engine engine;
  obs::Registry reg;
  engine.bind_metrics(reg);
  auto h = engine.schedule_at(sim::Time{100}, [] {});
  h.cancel();
  h.cancel();
  EXPECT_DOUBLE_EQ(reg.counter("sim.events.cancelled").value(), 1.0);
}

TEST(ObsEngine, QueueDepthHighWaterIgnoresTombstones) {
  // Regression: the depth gauge used to read the raw queue size, so
  // cancelled tombstones inflated the high-water mark.
  sim::Engine engine;
  obs::Registry reg;
  engine.bind_metrics(reg);
  std::vector<sim::EventHandle> hs;
  for (int i = 0; i < 3; ++i)
    hs.push_back(engine.schedule_at(sim::Time{(i + 1) * 10}, [] {}));
  for (auto& h : hs) h.cancel();
  for (int i = 0; i < 2; ++i) engine.post_at(sim::Time{100 + i}, [] {});
  engine.run();
  // Live depth never exceeded 3 (the old gauge would have reported 5).
  EXPECT_DOUBLE_EQ(reg.gauge("sim.queue.depth").max(), 3.0);
}

TEST(ObsEngine, HandlerTimingAccumulatesWallTime) {
  sim::Engine engine;
  engine.set_handler_timing(true);
  volatile double sink = 0.0;
  engine.post_at(sim::Time{0}, [&sink] {
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  });
  engine.run();
  EXPECT_GT(engine.handler_wall_ns(), 0);
  EXPECT_GE(engine.handler_wall_ns(), engine.handler_max_wall_ns());
}

TEST(ObsReliable, MirrorsStatsIntoRegistry) {
  sim::Engine engine;
  obs::Registry reg;
  net::ReliablePeer* a_ptr = nullptr;
  net::ReliablePeer* b_ptr = nullptr;
  net::ReliablePeer a(engine, {}, [&b_ptr](const net::Segment& s) {
    if (b_ptr) b_ptr->on_wire(s);
  });
  net::ReliablePeer b(engine, {}, [&a_ptr](const net::Segment& s) {
    if (a_ptr) a_ptr->on_wire(s);
  });
  a_ptr = &a;
  b_ptr = &b;
  a.bind_metrics(reg, "link.a");
  a.send({1, 2, 3});
  a.send({4, 5});
  engine.run();
  obs::Counter sent = reg.counter("link.a.data_sent");
  obs::Counter goodput = reg.counter("link.a.goodput_bytes");
  EXPECT_DOUBLE_EQ(sent.value(), 2.0);
  // Goodput counts *received in-order* payload bytes; a's counter sees
  // nothing (b received the data), so bind b and check symmetric usage.
  EXPECT_DOUBLE_EQ(goodput.value(), 0.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(a.stats().data_sent), sent.value());
}

// --- chrome trace export ----------------------------------------------------

sim::Trace tiny_trace() {
  sim::Trace t;
  t.add_span({"Node1", "PROC", sim::Time{1'000'000},  // 1 ms
              sim::Time{3'500'000}, "frame 0"});
  t.add_mark({"Node2", "rotate", sim::Time{2'000'000}});
  return t;
}

TEST(ChromeTrace, GoldenTinyTimeline) {
  std::vector<obs::CounterTrack> tracks;
  tracks.push_back(obs::CounterTrack{
      "Node1", "soc", {{4'000'000, 0.75}}});
  std::ostringstream os;
  obs::write_chrome_trace(tiny_trace(), tracks, os);
  EXPECT_EQ(
      os.str(),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"Node1\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"Node2\"}},\n"
      "{\"name\":\"PROC\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":1000.000,"
      "\"dur\":2500.000,\"pid\":1,\"tid\":1,"
      "\"args\":{\"detail\":\"frame 0\"}},\n"
      "{\"name\":\"rotate\",\"cat\":\"mark\",\"ph\":\"i\",\"ts\":2000.000,"
      "\"pid\":2,\"tid\":1,\"s\":\"p\"},\n"
      "{\"name\":\"soc\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":4000.000,"
      "\"pid\":1,\"args\":{\"soc\":0.75}}\n"
      "]}\n");
}

TEST(ChromeTrace, OutputIsDeterministic) {
  std::vector<obs::CounterTrack> tracks;
  tracks.push_back(obs::CounterTrack{"Node1", "soc", {{4'000'000, 0.75}}});
  std::ostringstream a, b;
  obs::write_chrome_trace(tiny_trace(), tracks, a);
  obs::write_chrome_trace(tiny_trace(), tracks, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ChromeTrace, SocTrackSamplesAtSegmentEnd) {
  power::PowerMonitor m("Node1", volts(4.0));
  m.set_tracing(true);
  m.record(cpu::Mode::kComp, 10, milliamps(100.0), seconds(2.0),
           sim::Time{1'000'000'000}, 0.9);
  const obs::CounterTrack soc = obs::soc_counter_track(m);
  ASSERT_EQ(soc.samples.size(), 1u);
  EXPECT_EQ(soc.samples[0].at_ns, 3'000'000'000);  // at + duration
  EXPECT_DOUBLE_EQ(soc.samples[0].value, 0.9);
  const obs::CounterTrack cur = obs::current_counter_track(m);
  ASSERT_EQ(cur.samples.size(), 1u);
  EXPECT_EQ(cur.samples[0].at_ns, 1'000'000'000);  // at segment start
  EXPECT_DOUBLE_EQ(cur.samples[0].value, 100.0);
}

// --- end-to-end capture -----------------------------------------------------

core::ExperimentSpec tiny_rotation_spec() {
  core::ExperimentSpec spec;
  for (const auto& s : core::paper_experiments())
    if (s.id == "2C") spec = s;
  return spec;
}

TEST(ObsCapture, ExperimentRunCapturesTraceCountersAndMetrics) {
  core::ExperimentSuite::Options options;
  options.max_frames = 120;  // past the spec's 100-frame rotation period
  core::ExperimentSuite suite(options);
  core::RunObservation capture;
  const auto result = suite.run(tiny_rotation_spec(), &capture);
  EXPECT_EQ(result.frames, 120);

  // Spans and rotation marks were recorded.
  EXPECT_FALSE(capture.trace.spans().empty());
  bool saw_rotation = false;
  for (const auto& m : capture.trace.marks())
    if (m.label.rfind("rotate", 0) == 0) saw_rotation = true;
  EXPECT_TRUE(saw_rotation);

  // Two nodes -> soc + current tracks each.
  EXPECT_EQ(capture.counters.size(), 4u);

  // Metrics include engine and system counters with believable values.
  double frames = -1.0, fired = -1.0;
  for (const auto& m : capture.metrics) {
    if (m.name == "system.frames_completed") frames = m.value;
    if (m.name == "sim.events.fired") fired = m.value;
  }
  EXPECT_DOUBLE_EQ(frames, 120.0);
  EXPECT_GT(fired, 0.0);

  // The export of the capture is schema-shaped and deterministic.
  std::ostringstream a, b;
  obs::write_chrome_trace(capture.trace, capture.counters, a);
  obs::write_chrome_trace(capture.trace, capture.counters, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(a.str().find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(a.str().find("\"ph\":\"C\""), std::string::npos);
}

TEST(ObsCapture, PlainRunCollectsNoObservability) {
  core::ExperimentSuite::Options options;
  options.max_frames = 5;
  core::ExperimentSuite suite(options);
  const auto result = suite.run(tiny_rotation_spec());
  EXPECT_TRUE(result.metrics.empty());
}

TEST(ObsCapture, CollectMetricsWithoutCapture) {
  core::ExperimentSuite::Options options;
  options.max_frames = 5;
  options.collect_metrics = true;
  core::ExperimentSuite suite(options);
  const auto result = suite.run(tiny_rotation_spec());
  EXPECT_FALSE(result.metrics.empty());
}

TEST(ObsCapture, ScenarioCaptureOverloadRecords) {
  std::string error;
  auto config = Config::parse(
      "[system]\nmax_frames = 10\n[pipeline]\nstages = 2\n", &error);
  ASSERT_TRUE(config) << error;
  core::RunObservation capture;
  const auto outcome = core::run_scenario(*config, &capture, &error);
  ASSERT_TRUE(outcome) << error;
  EXPECT_FALSE(capture.trace.spans().empty());
  EXPECT_FALSE(capture.counters.empty());
  EXPECT_FALSE(capture.metrics.empty());
}

// --- slot watchers and true histogram extremes ------------------------------

TEST(Metrics, WatcherFiresOnEveryMutationAndClears) {
  obs::Registry reg;
  obs::Counter c = reg.counter("watched");
  int fires = 0;
  EXPECT_FALSE(reg.set_watcher("absent", nullptr, nullptr));
  ASSERT_TRUE(reg.set_watcher(
      "watched", [](void* ctx) { ++*static_cast<int*>(ctx); }, &fires));
  c.inc();
  c.inc(2.0);
  EXPECT_EQ(fires, 2);
  ASSERT_TRUE(reg.set_watcher("watched", nullptr, nullptr));
  c.inc();
  EXPECT_EQ(fires, 2);
}

TEST(Metrics, HistogramSnapshotCarriesTrueExtremes) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("h", {1.0, 2.0});
  h.record(0.25, 2.0);  // below the first edge
  h.record(1.5);
  h.record(40.0);  // deep in the open overflow bucket
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].vmin, 0.25);
  EXPECT_DOUBLE_EQ(snap[0].vmax, 40.0);
  std::ostringstream os;
  obs::write_snapshot_json(snap, os);
  EXPECT_NE(os.str().find("\"min\":0.25"), std::string::npos);
  EXPECT_NE(os.str().find("\"max\":40"), std::string::npos);
}

// --- streaming aggregation ---------------------------------------------------

TEST(Aggregate, StreamingStatTracksMomentsAndQuantiles) {
  obs::StreamingStat s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.count(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  // Log-binned estimates: ~7% relative error at 16 bins/decade.
  EXPECT_NEAR(s.quantile(0.5), 50.0, 5.0);
  EXPECT_NEAR(s.quantile(0.95), 95.0, 9.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(Aggregate, MergeMatchesSingleStreamAndStaysInRange) {
  obs::StreamingStat a, b, whole;
  for (int i = 1; i <= 200; ++i) {
    const double v = 0.01 * i * i;  // spans three decades
    (i % 2 == 0 ? a : b).add(v);
    whole.add(v);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), whole.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.95), whole.quantile(0.95));
}

TEST(Aggregate, OutOfRangeSamplesAreAccountedNotClamped) {
  // Regression: the old histogram path silently clamped out-of-range
  // samples to the finite bin edges, biasing merged percentiles. Side
  // bins + exact extremes keep them accounted.
  obs::StreamingStat s;
  s.add(-3.0);    // negative side bin
  s.add(0.0);     // exact-zero side bin
  s.add(1e-12);   // below kLo: underflow side bin
  s.add(5e13);    // above kHi: overflow side bin
  EXPECT_DOUBLE_EQ(s.count(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 5e13);
  EXPECT_DOUBLE_EQ(s.underflow_weight(), 2.0);  // negative + below-kLo
  EXPECT_DOUBLE_EQ(s.overflow_weight(), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5e13);  // not clamped to kHi
  EXPECT_LE(s.quantile(0.01), 0.0);         // not clamped to kLo
}

TEST(Aggregate, HistogramSamplesUseTrueExtremesForOpenBuckets) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("lat", {1.0, 2.0});
  h.record(0.5, 10.0);
  h.record(1.5, 10.0);
  h.record(80.0, 10.0);  // open bucket: true edge is 80, not 2
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);

  obs::StreamingStat s;
  s.add_histogram(snap[0]);
  EXPECT_DOUBLE_EQ(s.count(), 30.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 80.0);
  // The top-weight midpoint sits at (2+80)/2, far above the clamped
  // value 2.0 the biased path would produce.
  EXPECT_GT(s.quantile(0.95), 10.0);
}

TEST(Aggregate, AggregatorMergesRunsAndSeries) {
  obs::Aggregator a, b;
  a.observe("x", 1.0);
  a.note_run(0, false);
  b.observe("x", 3.0);
  b.observe("y", 5.0);
  b.note_run(2, true);
  a.merge(b);
  EXPECT_EQ(a.runs(), 2);
  EXPECT_EQ(a.violations(), 2);
  EXPECT_EQ(a.failed_runs(), 1);
  ASSERT_EQ(a.size(), 2u);
  const obs::StreamingStat* x = a.find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_DOUBLE_EQ(x->count(), 2.0);
  EXPECT_DOUBLE_EQ(x->mean(), 2.0);
  std::ostringstream j1, j2;
  a.write_json(j1);
  a.write_json(j2);
  EXPECT_EQ(j1.str(), j2.str());
  EXPECT_NE(j1.str().find("\"runs\":2"), std::string::npos);
  EXPECT_NE(j1.str().find("\"name\":\"y\""), std::string::npos);
}

TEST(ObsReport, RunReportJsonIsWellFormedAndDeterministic) {
  core::ExperimentSuite::Options options;
  options.max_frames = 5;
  options.collect_metrics = true;
  core::ExperimentSuite suite(options);
  std::vector<core::ExperimentResult> results;
  results.push_back(suite.run(tiny_rotation_spec()));
  std::ostringstream a, b;
  core::write_run_report_json(results, a);
  core::write_run_report_json(results, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"experiments\""), std::string::npos);
  EXPECT_NE(a.str().find("\"id\": \"2C\""), std::string::npos);
  EXPECT_NE(a.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(a.str().find("system.frames_completed"), std::string::npos);
}

}  // namespace
}  // namespace deslp