// Fleet-scale conformance suite (core/fleet.h, ctest label `fleet`):
// election determinism, bit-identical replay at N = 100, the energy
// balance rotation buys over a fixed head, fleet-lifetime milestone
// ordering, 1000-node determinism, and invariance under the batch
// runner's worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "battery/battery.h"
#include "core/batch.h"
#include "core/fleet.h"
#include "core/topology.h"

namespace deslp::core {
namespace {

/// Short-range fast link: keeps head mailbox drain well inside a round
/// even with dozens of members per cluster.
net::LinkSpec fast_link() {
  net::LinkSpec link;
  link.line_rate = kilobits_per_second(2304.0);
  link.effective_rate = kilobits_per_second(2000.0);
  link.startup_min = milliseconds(1.0);
  link.startup_max = milliseconds(2.0);
  return link;
}

/// The ideal battery model keeps every test bit-stable across libm builds
/// (no exp/expm1); capacity in mAh sets how fast nodes die.
FleetConfig fleet_config(int nodes, int clusters, long long max_rounds,
                         double capacity_mah) {
  FleetConfig fc;
  fc.cpu = &cpu::itsy_sa1100();
  fc.link = fast_link();
  const Coulombs cap = milliamp_hours(capacity_mah);
  fc.battery_factory = [cap] { return battery::make_ideal_battery(cap); };
  fc.topology = Topology::fleet(nodes, clusters);
  fc.round_period = seconds(0.5);
  fc.epoch_rounds = 5;
  fc.member_levels = {0, 0, 0};
  fc.head_levels = {cpu::itsy_sa1100().top_level(), 0, 0};
  fc.max_rounds = max_rounds;
  fc.stall_rounds = 20.0;
  fc.seed = 42;
  return fc;
}

void expect_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.run.frames_sent, b.run.frames_sent);
  EXPECT_EQ(a.run.frames_completed, b.run.frames_completed);
  EXPECT_EQ(a.run.frames_lost, b.run.frames_lost);
  EXPECT_DOUBLE_EQ(a.run.sim_end.value(), b.run.sim_end.value());
  EXPECT_DOUBLE_EQ(a.run.last_completion.value(),
                   b.run.last_completion.value());
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.elections, b.elections);
  EXPECT_EQ(a.head_switches, b.head_switches);
  EXPECT_EQ(a.head_conflicts, b.head_conflicts);
  EXPECT_EQ(a.nodes_died, b.nodes_died);
  EXPECT_DOUBLE_EQ(a.first_death.value(), b.first_death.value());
  EXPECT_DOUBLE_EQ(a.half_alive.value(), b.half_alive.value());
  EXPECT_DOUBLE_EQ(a.last_alive.value(), b.last_alive.value());
  EXPECT_EQ(a.head_sequence, b.head_sequence);
  EXPECT_EQ(a.head_epochs, b.head_epochs);
  ASSERT_EQ(a.run.nodes.size(), b.run.nodes.size());
  for (std::size_t i = 0; i < a.run.nodes.size(); ++i) {
    EXPECT_EQ(a.run.nodes[i].died, b.run.nodes[i].died);
    EXPECT_DOUBLE_EQ(a.run.nodes[i].death_time.value(),
                     b.run.nodes[i].death_time.value());
    EXPECT_DOUBLE_EQ(a.run.nodes[i].final_soc, b.run.nodes[i].final_soc);
    EXPECT_DOUBLE_EQ(a.run.nodes[i].charge_used.value(),
                     b.run.nodes[i].charge_used.value());
    EXPECT_DOUBLE_EQ(a.run.nodes[i].energy_used.value(),
                     b.run.nodes[i].energy_used.value());
  }
}

// Same seed, same config: the full election history (every winner of
// every election, in order) must replay exactly.
TEST(FleetElection, SameSeedSameHeadSequence) {
  FleetSystem a(fleet_config(20, 4, 40, 5.0));
  FleetSystem b(fleet_config(20, 4, 40, 5.0));
  const FleetResult ra = a.run();
  const FleetResult rb = b.run();
  ASSERT_FALSE(ra.head_sequence.empty());
  EXPECT_EQ(ra.head_sequence, rb.head_sequence);
  EXPECT_GT(ra.head_switches, 0);  // rotation actually rotated
  EXPECT_EQ(ra.head_conflicts, 0);
}

// Bit-identical replay at fleet scale: every scalar of the result,
// including per-node energy doubles, must match across two fresh systems.
TEST(FleetDeterminism, BitIdenticalReplayAt100Nodes) {
  FleetSystem a(fleet_config(100, 5, 30, 5.0));
  FleetSystem b(fleet_config(100, 5, 30, 5.0));
  const FleetResult ra = a.run();
  EXPECT_GT(ra.run.frames_completed, 0);
  expect_identical(ra, b.run());
}

// A 1000-node fleet must complete and replay exactly — the scenario the
// paper's two-node case study scales toward.
TEST(FleetDeterminism, ThousandNodeFleetReplaysExactly) {
  FleetSystem a(fleet_config(1000, 25, 10, 5.0));
  FleetSystem b(fleet_config(1000, 25, 10, 5.0));
  const FleetResult ra = a.run();
  EXPECT_EQ(ra.rounds, 10);
  EXPECT_GT(ra.run.frames_completed, 0);
  expect_identical(ra, b.run());
}

// Fleet runs inside the batch runner must not depend on the worker count:
// the same four configurations mapped at jobs=1 and jobs=4 give the same
// results in the same order.
TEST(FleetDeterminism, BatchResultsInvariantUnderJobCount) {
  auto run_batch = [](int jobs) {
    BatchRunner runner(BatchOptions{jobs});
    return runner.map<FleetResult>(4, [](std::size_t i) {
      FleetConfig fc = fleet_config(30, 3, 25, 5.0);
      fc.seed = 42 + static_cast<std::uint64_t>(i);
      FleetSystem sys(std::move(fc));
      return sys.run();
    });
  };
  const auto sequential = run_batch(1);
  const auto parallel = run_batch(4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE("item " + std::to_string(i));
    expect_identical(sequential[i], parallel[i]);
  }
}

// Energy balance (the point of rotation): with max-SoC rotation the
// per-node energy spread must stay strictly below the fixed-head
// baseline, where cluster leaders burn while members coast.
TEST(FleetEnergyBalance, RotationSpreadsHeadTaxBelowFixedHead) {
  auto spread = [](FleetConfig fc) {
    FleetSystem sys(std::move(fc));
    const FleetResult r = sys.run();
    double lo = 1e300;
    double hi = 0.0;
    for (const auto& n : r.run.nodes) {
      lo = std::min(lo, n.energy_used.value());
      hi = std::max(hi, n.energy_used.value());
    }
    return hi - lo;
  };
  FleetConfig rotating = fleet_config(24, 3, 60, 10.0);
  rotating.election = FleetConfig::Election::kMaxSoc;
  FleetConfig fixed = fleet_config(24, 3, 60, 10.0);
  fixed.election = FleetConfig::Election::kFixed;
  const double rotating_spread = spread(std::move(rotating));
  const double fixed_spread = spread(std::move(fixed));
  EXPECT_LT(rotating_spread, fixed_spread);
  EXPECT_GT(fixed_spread, 0.0);
}

// Lifetime milestones must be reached in order once the whole fleet runs
// its packs dry: first death <= half alive <= last death, all positive.
TEST(FleetLifetime, MilestonesOrderedWhenFleetDies) {
  FleetConfig fc = fleet_config(12, 3, 100000, 0.2);  // tiny packs, no quota
  FleetSystem sys(std::move(fc));
  const FleetResult r = sys.run();
  EXPECT_EQ(r.nodes_died, 12);
  EXPECT_GT(r.first_death.value(), 0.0);
  EXPECT_LE(r.first_death.value(), r.half_alive.value());
  EXPECT_LE(r.half_alive.value(), r.last_alive.value());
  EXPECT_LE(r.last_alive.value(), r.run.sim_end.value() + 1e-9);
}

// Round-robin rotation is the degenerate deterministic policy: every live
// member takes the head role in index order, so over C clusters and E
// epochs every node heads at least once when epochs >= cluster size.
TEST(FleetElection, RoundRobinVisitsEveryMember) {
  FleetConfig fc = fleet_config(12, 3, 45, 10.0);  // 9 epochs, clusters of 4
  fc.election = FleetConfig::Election::kRoundRobin;
  FleetSystem sys(std::move(fc));
  const FleetResult r = sys.run();
  for (std::size_t i = 0; i < r.head_epochs.size(); ++i)
    EXPECT_GT(r.head_epochs[i], 0) << "node " << i + 1 << " never led";
}

}  // namespace
}  // namespace deslp::core
