#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.h"
#include "sim/engine.h"
#include "sim/gate.h"
#include "sim/task.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace deslp::sim {
namespace {

// --- time ---------------------------------------------------------------------

TEST(SimTime, Arithmetic) {
  const Time t{1000};
  EXPECT_EQ((t + Dur{500}).nanos(), 1500);
  EXPECT_EQ((t - Dur{500}).nanos(), 500);
  EXPECT_EQ((Time{3000} - Time{1000}).nanos(), 2000);
  EXPECT_LT(Time{1}, Time{2});
}

TEST(SimTime, SecondsConversionRoundTrips) {
  EXPECT_EQ(from_seconds(seconds(1.5)).nanos(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(Dur{2'300'000'000}).value(), 2.3);
  EXPECT_EQ(from_seconds(milliseconds(0.0000005)).nanos(), 1);  // rounds
}

// --- engine --------------------------------------------------------------------

TEST(Engine, FiresEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time{300}, [&] { order.push_back(3); });
  e.schedule_at(Time{100}, [&] { order.push_back(1); });
  e.schedule_at(Time{200}, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), Time{300});
}

TEST(Engine, SimultaneousEventsFifoByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time{100}, [&] { order.push_back(1); });
  e.schedule_at(Time{100}, [&] { order.push_back(2); });
  e.schedule_at(Time{100}, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, CancelledEventDoesNotFire) {
  Engine e;
  bool fired = false;
  EventHandle h = e.schedule_at(Time{100}, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, EventsScheduledFromEventsRun) {
  Engine e;
  int depth = 0;
  e.schedule_at(Time{10}, [&] {
    ++depth;
    e.schedule_after(Dur{10}, [&] { ++depth; });
  });
  e.run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(e.now(), Time{20});
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    e.schedule_at(Time{i * 100}, [&] { ++count; });
  e.run_until(Time{500});
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.pending_events(), 5u);
}

TEST(Engine, RunUntilFiresEventExactlyAtDeadline) {
  Engine e;
  int count = 0;
  e.schedule_at(Time{100}, [&] { ++count; });
  e.schedule_at(Time{500}, [&] { ++count; });  // exactly at the deadline
  e.schedule_at(Time{501}, [&] { ++count; });  // just past it
  const Time end = e.run_until(Time{500});
  EXPECT_EQ(count, 2);  // the deadline event itself fires
  EXPECT_EQ(end, Time{500});
  EXPECT_EQ(e.now(), Time{500});
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, RunUntilLeavesClockAtLastEventWhenQueueDrains) {
  Engine e;
  int count = 0;
  e.schedule_at(Time{100}, [&] { ++count; });
  const Time end = e.run_until(Time{500});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(end, Time{100});  // not pushed forward to the deadline
  EXPECT_EQ(e.now(), Time{100});
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, PostAtSharesTimeAndFifoOrderWithScheduledEvents) {
  // post_at is the fire-and-forget path (no EventHandle allocated); it must
  // still interleave with cancellable schedule_at events in (time, sequence)
  // order, and cancelled handles must not disturb the posted events around
  // them.
  Engine e;
  std::vector<int> order;
  e.post_at(Time{200}, [&] { order.push_back(3); });
  e.schedule_at(Time{100}, [&] { order.push_back(1); });
  e.post_at(Time{100}, [&] { order.push_back(2); });  // same time, FIFO
  EventHandle h = e.schedule_at(Time{150}, [&] { order.push_back(99); });
  e.post_after(Dur{300}, [&] {
    order.push_back(4);
    e.post_after(Dur{50}, [&] { order.push_back(5); });
  });
  h.cancel();
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(e.now(), Time{350});
}

TEST(Engine, CancelledEventsLeavePendingCountImmediately) {
  // Regression: the heap engine left cancelled tombstones in the queue, so
  // pending_events() overcounted until the tombstone surfaced and was
  // skipped. Cancellation must be visible in the count at cancel() time.
  Engine e;
  std::vector<EventHandle> hs;
  hs.reserve(8);
  for (int i = 0; i < 8; ++i)
    hs.push_back(e.schedule_at(Time{(i + 1) * 100}, [] {}));
  EXPECT_EQ(e.pending_events(), 8u);
  for (auto& h : hs) h.cancel();
  EXPECT_EQ(e.pending_events(), 0u);
  for (auto& h : hs) h.cancel();  // idempotent: no double-decrement
  EXPECT_EQ(e.pending_events(), 0u);
  e.run();
  EXPECT_EQ(e.now(), Time{});  // nothing fired, the clock never moved
}

TEST(Engine, PendingIsFalseInsideOwnHandler) {
  // Regression: the heap engine popped the entry but left the cancellation
  // token alive during dispatch, so a handler asking about its own event
  // saw pending() == true while it was already running.
  Engine e;
  bool pending_inside = true;
  EventHandle h;
  h = e.schedule_at(Time{100}, [&] { pending_inside = h.pending(); });
  EXPECT_TRUE(h.pending());
  e.run();
  EXPECT_FALSE(pending_inside);
  EXPECT_FALSE(h.pending());
}

TEST(Engine, SelfCancelInsideHandlerIsNoOp) {
  // Regression: self-cancel used to "succeed" silently (setting a flag on
  // an event that had already fired). It is now defined as a no-op, and the
  // stale handle must not be able to touch the recycled slot afterwards.
  Engine e;
  int fired = 0;
  EventHandle h;
  h = e.schedule_at(Time{100}, [&] {
    ++fired;
    h.cancel();
  });
  e.run();
  EXPECT_EQ(fired, 1);
  bool second = false;
  EventHandle h2 = e.schedule_after(Dur{10}, [&] { second = true; });
  h.cancel();  // stale ticket: must not hit h2's (possibly reused) slot
  EXPECT_TRUE(h2.pending());
  e.run();
  EXPECT_TRUE(second);
}

TEST(Engine, DefaultConstructedHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be safe
}

TEST(Engine, ResetHandlerStatsZeroesAccumulators) {
  // Regression: handler_wall_ns accumulated silently across run() phases,
  // so per-phase attribution double-counted earlier phases.
  Engine e;
  e.set_handler_timing(true);
  volatile double sink = 0.0;
  e.post_at(Time{0}, [&sink] {
    for (int i = 0; i < 20000; ++i) sink = sink + 1.0;
  });
  e.run();
  ASSERT_GT(e.handler_wall_ns(), 0);
  ASSERT_GT(e.handler_max_wall_ns(), 0);
  e.reset_handler_stats();
  EXPECT_EQ(e.handler_wall_ns(), 0);
  EXPECT_EQ(e.handler_max_wall_ns(), 0);
  e.post_after(Dur{1}, [&sink] {
    for (int i = 0; i < 20000; ++i) sink = sink + 1.0;
  });
  e.run();
  EXPECT_GT(e.handler_wall_ns(), 0);  // second phase counted from zero
}

TEST(Engine, StopEndsRunEarly) {
  Engine e;
  int count = 0;
  e.schedule_at(Time{100}, [&] {
    ++count;
    e.stop();
  });
  e.schedule_at(Time{200}, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
}

TEST(Engine, PostEveryRepeatsAtFixedPeriodUntilStop) {
  Engine e;
  std::vector<long long> ticks;
  e.post_every(Dur{100}, [&] { ticks.push_back(e.now().nanos()); });
  e.schedule_at(Time{450}, [&] { e.stop(); });
  e.run();
  EXPECT_EQ(ticks, (std::vector<long long>{100, 200, 300, 400}));
}

TEST(Engine, PostEveryTicksInterleaveAfterOtherEventsAtTheSameTime) {
  // The repost happens inside the tick handler, so a tick shares its
  // instant with same-time events but fires after ones scheduled earlier
  // (FIFO by schedule order) — a read-only observer never reorders them.
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time{100}, [&] { order.push_back(1); });
  e.post_every(Dur{100}, [&] {
    order.push_back(2);
    if (order.size() >= 3) e.stop();
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 2}));
}

// --- coroutines -------------------------------------------------------------------

Task counting_process(Engine& e, std::vector<double>& at) {
  at.push_back(to_seconds(e.now()).value());
  co_await e.delay(seconds(1.0));
  at.push_back(to_seconds(e.now()).value());
  co_await e.delay(seconds(0.5));
  at.push_back(to_seconds(e.now()).value());
}

TEST(Coroutines, DelaysAdvanceVirtualTime) {
  Engine e;
  std::vector<double> at;
  e.spawn(counting_process(e, at));
  e.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_DOUBLE_EQ(at[0], 0.0);
  EXPECT_DOUBLE_EQ(at[1], 1.0);
  EXPECT_DOUBLE_EQ(at[2], 1.5);
}

ValueTask<int> add_after_delay(Engine& e, int a, int b) {
  co_await e.delay(seconds(1.0));
  co_return a + b;
}

Task parent_process(Engine& e, int& result) {
  result = co_await add_after_delay(e, 2, 3);
}

TEST(Coroutines, ValueTaskReturnsThroughAwait) {
  Engine e;
  int result = 0;
  e.spawn(parent_process(e, result));
  e.run();
  EXPECT_EQ(result, 5);
  EXPECT_EQ(to_seconds(e.now()).value(), 1.0);
}

Task nested_child(Engine& e, std::vector<std::string>& log) {
  log.push_back("child-start");
  co_await e.delay(seconds(2.0));
  log.push_back("child-end");
}

Task nested_parent(Engine& e, std::vector<std::string>& log) {
  log.push_back("parent-start");
  co_await nested_child(e, log);
  log.push_back("parent-end");
}

TEST(Coroutines, NestedTasksSequence) {
  Engine e;
  std::vector<std::string> log;
  e.spawn(nested_parent(e, log));
  e.run();
  EXPECT_EQ(log, (std::vector<std::string>{"parent-start", "child-start",
                                           "child-end", "parent-end"}));
}

// --- channel ----------------------------------------------------------------------

Task producer(Engine& e, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await e.delay(seconds(1.0));
    ch.send(i);
  }
  ch.close();
}

Task consumer(Channel<int>& ch, std::vector<int>& got) {
  for (;;) {
    auto v = co_await ch.recv();
    if (!v) co_return;
    got.push_back(*v);
  }
}

TEST(Channel, DeliversInOrderAndCloses) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got;
  e.spawn(consumer(ch, got));
  e.spawn(producer(e, ch, 5));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BuffersWhenNoReceiver) {
  Engine e;
  Channel<int> ch(e);
  ch.send(7);
  ch.send(8);
  EXPECT_EQ(ch.buffered(), 2u);
  std::vector<int> got;
  e.spawn(consumer(ch, got));
  ch.close();
  e.run();
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
}

Task timeout_consumer(Channel<int>& ch, Dur timeout,
                      std::vector<std::optional<int>>& got) {
  got.push_back(co_await ch.recv_timeout(timeout));
  got.push_back(co_await ch.recv_timeout(timeout));
}

TEST(Channel, RecvTimeoutExpiresThenSucceeds) {
  Engine e;
  Channel<int> ch(e);
  std::vector<std::optional<int>> got;
  e.spawn(timeout_consumer(ch, seconds_dur(2), got));
  // Nothing for 2 s -> first recv times out; value at t=3 s -> second gets it.
  e.schedule_at(Time{3'000'000'000}, [&] { ch.send(42); });
  e.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_FALSE(got[0].has_value());
  ASSERT_TRUE(got[1].has_value());
  EXPECT_EQ(*got[1], 42);
}

TEST(Channel, CloseWakesWaiter) {
  Engine e;
  Channel<int> ch(e);
  std::vector<int> got;
  e.spawn(consumer(ch, got));
  e.schedule_at(Time{100}, [&] { ch.close(); });
  e.run();
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(ch.closed());
}

// --- gate -------------------------------------------------------------------------

Task gate_waiter(Gate& g, Engine& e, std::vector<double>& woke) {
  co_await g.wait();
  woke.push_back(to_seconds(e.now()).value());
}

TEST(Gate, OpenWakesAllWaiters) {
  Engine e;
  Gate g(e);
  std::vector<double> woke;
  e.spawn(gate_waiter(g, e, woke));
  e.spawn(gate_waiter(g, e, woke));
  e.schedule_at(Time{5'000'000'000}, [&] { g.open(); });
  e.run();
  ASSERT_EQ(woke.size(), 2u);
  EXPECT_DOUBLE_EQ(woke[0], 5.0);
  EXPECT_DOUBLE_EQ(woke[1], 5.0);
}

TEST(Gate, OpenGatePassesImmediately) {
  Engine e;
  Gate g(e);
  g.open();
  std::vector<double> woke;
  e.spawn(gate_waiter(g, e, woke));
  e.run();
  ASSERT_EQ(woke.size(), 1u);
  EXPECT_DOUBLE_EQ(woke[0], 0.0);
}

// --- trace ------------------------------------------------------------------------

TEST(Trace, AccumulatesSpansAndMarks) {
  Trace t;
  t.add_span({"Node1", "PROC", Time{0}, Time{1'000'000'000}, "frame 0"});
  t.add_span({"Node1", "SEND", Time{1'000'000'000}, Time{1'500'000'000}, ""});
  t.add_span({"Node2", "PROC", Time{0}, Time{2'000'000'000}, ""});
  t.add_mark({"Node1", "died", Time{1'500'000'000}});
  EXPECT_EQ(t.spans().size(), 3u);
  EXPECT_EQ(t.spans_for("Node1").size(), 2u);
  EXPECT_EQ(t.marks_for("Node1").size(), 1u);
  EXPECT_EQ(t.time_in("Node1", "PROC", Time{0}, Time{10'000'000'000}).nanos(),
            1'000'000'000);
  // Clipping.
  EXPECT_EQ(t.time_in("Node2", "PROC", Time{500'000'000},
                      Time{1'000'000'000}).nanos(),
            500'000'000);
}

TEST(Trace, RecordingOffDropsSpansKeepsMarks) {
  Trace t;
  t.set_recording(false);
  t.add_span({"a", "b", Time{0}, Time{1}, ""});
  t.add_mark({"a", "m", Time{0}});
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.marks().size(), 1u);
}

TEST(Trace, RenderSortsByTime) {
  Trace t;
  t.add_span({"B", "X", Time{2'000'000'000}, Time{3'000'000'000}, ""});
  t.add_span({"A", "Y", Time{1'000'000'000}, Time{2'000'000'000}, ""});
  const std::string out = t.render();
  EXPECT_LT(out.find("A"), out.find("B"));
}

TEST(Trace, RenderEmptyTraceIsEmptyString) {
  Trace t;
  EXPECT_EQ(t.render(), "");
}

TEST(Trace, RenderTruncatesAtMaxRows) {
  Trace t;
  for (int i = 0; i < 5; ++i)
    t.add_span({"A", "X", Time{i * 1'000'000'000LL},
                Time{(i + 1) * 1'000'000'000LL}, ""});
  const std::string out = t.render(2);
  EXPECT_NE(out.find("(3 more rows)"), std::string::npos);
}

TEST(Trace, TimeInEmptyAndReversedWindowsAreZero) {
  Trace t;
  t.add_span({"A", "PROC", Time{0}, Time{1'000'000'000}, ""});
  // Empty window.
  EXPECT_EQ(t.time_in("A", "PROC", Time{500}, Time{500}).nanos(), 0);
  // Reversed window clips to nothing rather than going negative.
  EXPECT_EQ(t.time_in("A", "PROC", Time{1'000'000'000}, Time{0}).nanos(), 0);
  // No matching actor/kind.
  EXPECT_EQ(t.time_in("B", "PROC", Time{0}, Time{1'000'000'000}).nanos(), 0);
  EXPECT_EQ(t.time_in("A", "SEND", Time{0}, Time{1'000'000'000}).nanos(), 0);
}

TEST(Trace, AggregatesSurviveRecordingOff) {
  Trace t;
  t.set_recording(false);
  t.add_span({"Node1", "PROC", Time{0}, Time{1'000'000'000}, ""});
  t.note_span("Node1", "PROC", Time{1'000'000'000}, Time{3'000'000'000});
  t.note_span("Node1", "SEND", Time{3'000'000'000}, Time{3'500'000'000});
  t.add_mark({"Node1", "m", Time{0}});

  EXPECT_TRUE(t.spans().empty());  // nothing stored...
  EXPECT_EQ(t.span_count(), 3);    // ...but everything counted
  EXPECT_EQ(t.mark_count(), 1);
  EXPECT_EQ(t.total_time_in("Node1", "PROC").nanos(), 3'000'000'000);
  EXPECT_EQ(t.total_time_in("Node1", "SEND").nanos(), 500'000'000);
  EXPECT_EQ(t.total_time_in("Node1", "RECV").nanos(), 0);

  ASSERT_EQ(t.span_totals().size(), 2u);
  EXPECT_EQ(t.span_totals()[0].actor, "Node1");
  EXPECT_EQ(t.span_totals()[0].kind, "PROC");
  EXPECT_EQ(t.span_totals()[0].spans, 2);
}

TEST(Trace, AddSpanAndNoteSpanFeedTheSameTotals) {
  Trace recorded, noted;
  recorded.add_span({"A", "PROC", Time{0}, Time{2'000'000'000}, ""});
  noted.set_recording(false);
  noted.note_span("A", "PROC", Time{0}, Time{2'000'000'000});
  EXPECT_EQ(recorded.span_count(), noted.span_count());
  EXPECT_EQ(recorded.total_time_in("A", "PROC").nanos(),
            noted.total_time_in("A", "PROC").nanos());
}

TEST(Trace, ClearResetsAggregates) {
  Trace t;
  t.add_span({"A", "PROC", Time{0}, Time{1'000'000'000}, ""});
  t.add_mark({"A", "m", Time{0}});
  t.clear();
  EXPECT_EQ(t.span_count(), 0);
  EXPECT_EQ(t.mark_count(), 0);
  EXPECT_TRUE(t.span_totals().empty());
  EXPECT_EQ(t.total_time_in("A", "PROC").nanos(), 0);
}

}  // namespace
}  // namespace deslp::sim
