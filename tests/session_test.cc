// End-to-end tests of the byte-level protocol stack: reliable messages over
// PPP frames over byte-timed UARTs, including corruption on the wire
// (flipped bytes must be caught by the FCS and repaired by retransmission).
#include <gtest/gtest.h>

#include <vector>

#include "net/session.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace deslp::net {
namespace {

std::vector<std::uint8_t> message_of(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> m(size);
  for (auto& b : m) b = static_cast<std::uint8_t>(rng.below(256));
  return m;
}

struct Stack {
  sim::Engine engine;
  Uart a_to_b{engine, kilobits_per_second(115.2)};
  Uart b_to_a{engine, kilobits_per_second(115.2)};
  PppSession a;
  PppSession b;

  explicit Stack(SessionOptions opt = {}) : a(engine, opt), b(engine, opt) {
    a.attach_uarts(a_to_b, b_to_a);
    b.attach_uarts(b_to_a, a_to_b);
  }
};

sim::Task collect_messages(PppSession& session,
                           std::vector<std::vector<std::uint8_t>>& got,
                           std::size_t expect) {
  while (got.size() < expect) {
    auto m = co_await session.received().recv();
    if (!m) co_return;
    got.push_back(*m);
  }
}

// --- segment header -----------------------------------------------------------

TEST(SegmentCodec, RoundTrip) {
  Segment seg;
  seg.type = Segment::Type::kData;
  seg.seq = 0x0123456789ABCDEFULL;
  seg.payload = {1, 2, 3, 0x7E, 0x7D};
  seal(seg);
  const auto bytes = PppSession::encode_segment(seg);
  const auto back = PppSession::decode_segment(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, seg.type);
  EXPECT_EQ(back->seq, seg.seq);
  EXPECT_EQ(back->checksum, seg.checksum);
  EXPECT_EQ(back->payload, seg.payload);
}

TEST(SegmentCodec, RejectsMalformed) {
  EXPECT_FALSE(PppSession::decode_segment({}).has_value());
  EXPECT_FALSE(PppSession::decode_segment({1, 2, 3}).has_value());
  Segment seg;
  seg.payload = {9};
  auto bytes = PppSession::encode_segment(seg);
  bytes[0] = 0x7F;  // unknown type
  EXPECT_FALSE(PppSession::decode_segment(bytes).has_value());
  bytes = PppSession::encode_segment(seg);
  bytes.push_back(0);  // length mismatch
  EXPECT_FALSE(PppSession::decode_segment(bytes).has_value());
}

// --- clean wire ------------------------------------------------------------------

TEST(PppSessionStack, SmallMessageRoundTrip) {
  Stack s;
  std::vector<std::vector<std::uint8_t>> got;
  s.engine.spawn(collect_messages(s.b, got, 1));
  const auto msg = message_of(100, 1);
  s.a.send_message(msg);
  s.engine.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], msg);
  EXPECT_EQ(s.b.frames_rejected(), 0u);
}

TEST(PppSessionStack, LargeMessageIsSegmentedAndReassembled) {
  Stack s;
  std::vector<std::vector<std::uint8_t>> got;
  s.engine.spawn(collect_messages(s.b, got, 1));
  const auto msg = message_of(10342, 2);  // the 10.1 KB ATR frame
  s.a.send_message(msg);
  s.engine.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], msg);
  // At least ceil(10342 / 511) data segments crossed the wire.
  EXPECT_GE(s.a.transport_stats().data_sent, 21);
}

TEST(PppSessionStack, ManyMessagesStayInOrder) {
  Stack s;
  std::vector<std::vector<std::uint8_t>> got;
  s.engine.spawn(collect_messages(s.b, got, 20));
  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(message_of(50 + static_cast<std::size_t>(i) * 37,
                              static_cast<std::uint64_t>(i) + 10));
    s.a.send_message(sent.back());
  }
  s.engine.run();
  ASSERT_EQ(got.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(got[i], sent[i]);
}

TEST(PppSessionStack, BidirectionalTraffic) {
  Stack s;
  std::vector<std::vector<std::uint8_t>> got_b, got_a;
  s.engine.spawn(collect_messages(s.b, got_b, 3));
  s.engine.spawn(collect_messages(s.a, got_a, 3));
  for (int i = 0; i < 3; ++i) {
    s.a.send_message(message_of(200, static_cast<std::uint64_t>(i)));
    s.b.send_message(message_of(300, static_cast<std::uint64_t>(i) + 50));
  }
  s.engine.run();
  EXPECT_EQ(got_b.size(), 3u);
  EXPECT_EQ(got_a.size(), 3u);
}

TEST(PppSessionStack, WireTimeMatchesLineRate) {
  // 1 KB message: wire bytes = framing(payload+headers); at 115.2 Kbps with
  // 8N1, goodput is bounded by line_rate * 8/10 minus overhead, so the
  // transfer takes roughly bytes*10/line_rate.
  Stack s;
  std::vector<std::vector<std::uint8_t>> got;
  s.engine.spawn(collect_messages(s.b, got, 1));
  s.a.send_message(message_of(1024, 7));
  const sim::Time end = s.engine.run();
  ASSERT_EQ(got.size(), 1u);
  const double elapsed = sim::to_seconds(end).value();
  const double floor_s = 1024.0 * 10.0 / 115200.0;  // payload alone
  EXPECT_GT(elapsed, floor_s);
  EXPECT_LT(elapsed, floor_s * 1.5);  // overhead below 50%
}

// --- corrupted wire -----------------------------------------------------------------

struct CorruptingStack {
  sim::Engine engine;
  Uart a_to_b{engine, kilobits_per_second(115.2)};
  Uart b_to_a{engine, kilobits_per_second(115.2)};
  PppSession a;
  PppSession b;
  Rng rng{1234};
  double flip_rate;

  explicit CorruptingStack(double rate, SessionOptions opt = {})
      : a(engine, opt), b(engine, opt), flip_rate(rate) {
    a.attach_uarts(a_to_b, b_to_a);
    b.attach_uarts(b_to_a, a_to_b);
    // Interpose on the a->b line: flip the occasional byte. The FCS must
    // reject the damaged frame and the transport must retransmit.
    PppSession* bp = &b;
    a_to_b.connect([this, bp](std::uint8_t byte) {
      if (rng.chance(flip_rate)) byte ^= 0x40;
      bp->receive_byte(byte);
    });
  }
};

class CorruptionTest : public ::testing::TestWithParam<double> {};

TEST_P(CorruptionTest, FcsCatchesCorruptionAndTransportRepairs) {
  SessionOptions opt;
  opt.reliable.rto = milliseconds(200.0);
  CorruptingStack s(GetParam(), opt);
  std::vector<std::vector<std::uint8_t>> got;
  s.engine.spawn(collect_messages(s.b, got, 5));
  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(message_of(700, static_cast<std::uint64_t>(i) + 99));
    s.a.send_message(sent.back());
  }
  s.engine.run();
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(got[i], sent[i]);
  if (GetParam() > 0.0) {
    EXPECT_GT(s.b.frames_rejected(), 0u);
    EXPECT_GT(s.a.transport_stats().data_retx, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(FlipRates, CorruptionTest,
                         ::testing::Values(0.0, 0.0005, 0.002, 0.008),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "per10k_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10000));
                         });

TEST(PppSessionStack, GoodputNearPaperMeasurement) {
  // Stream 20 ATR frames a->b and derive goodput: the paper measured
  // ~80 Kbps effective on the 115.2 Kbps line; our stack (PPP framing +
  // transport headers + acks on a clean line) must land in the same band.
  Stack s;
  constexpr int kFrames = 20;
  constexpr std::size_t kFrameBytes = 10342;
  std::vector<std::vector<std::uint8_t>> got;
  s.engine.spawn(collect_messages(s.b, got, kFrames));
  for (int i = 0; i < kFrames; ++i)
    s.a.send_message(message_of(kFrameBytes, static_cast<std::uint64_t>(i)));
  const sim::Time end = s.engine.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  const double goodput_kbps = kFrames * kFrameBytes * 8.0 /
                              sim::to_seconds(end).value() / 1000.0;
  EXPECT_GT(goodput_kbps, 60.0);
  EXPECT_LT(goodput_kbps, 95.0);
}

}  // namespace
}  // namespace deslp::net
