#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cpu/cpu.h"
#include "dvs/buffered.h"
#include "dvs/policy.h"
#include "dvs/yao.h"
#include "util/rng.h"

namespace deslp::dvs {
namespace {

using cpu::itsy_sa1100;

// --- policies ------------------------------------------------------------------

FrameContext baseline_context() {
  FrameContext ctx;
  ctx.work = work(megahertz(206.4), seconds(1.1));
  ctx.recv_time = seconds(1.1);
  ctx.send_time = seconds(0.1);
  ctx.frame_delay = seconds(2.3);
  return ctx;
}

TEST(Policy, FixedAssignsAllSegmentsSameLevel) {
  const auto p = make_fixed_policy(7);
  const LevelAssignment a = p->assign(itsy_sa1100(), baseline_context());
  EXPECT_EQ(a.comp_level, 7);
  EXPECT_EQ(a.comm_level, 7);
  EXPECT_EQ(a.idle_level, 7);
}

TEST(Policy, DvsDuringIoDropsWireToLowest) {
  const auto p = make_dvs_during_io_policy(10);
  const LevelAssignment a = p->assign(itsy_sa1100(), baseline_context());
  EXPECT_EQ(a.comp_level, 10);
  EXPECT_EQ(a.comm_level, 0);
  EXPECT_EQ(a.idle_level, 0);
}

TEST(Policy, MinFeasiblePicksLowestMeetingDeadline) {
  const auto p = make_min_feasible_policy(false);
  // The baseline context needs the full 206.4 MHz (1.1 s of work in a 1.1 s
  // budget).
  const LevelAssignment a = p->assign(itsy_sa1100(), baseline_context());
  EXPECT_EQ(a.comp_level, itsy_sa1100().top_level());
  EXPECT_EQ(a.comm_level, a.comp_level);

  // Half the work fits at 103.2 MHz.
  FrameContext half = baseline_context();
  half.work = work(megahertz(206.4), seconds(0.55));
  EXPECT_EQ(p->assign(itsy_sa1100(), half).comp_level,
            cpu::sa1100_level_mhz(103.2));
}

TEST(Policy, MinFeasibleWithDvsIo) {
  const auto p = make_min_feasible_policy(true);
  const LevelAssignment a = p->assign(itsy_sa1100(), baseline_context());
  EXPECT_EQ(a.comm_level, 0);
  EXPECT_EQ(a.idle_level, 0);
}

TEST(Policy, ContinuousContextUsesTopForMinFeasible) {
  const auto p = make_min_feasible_policy(false);
  FrameContext ctx;
  ctx.work = work(megahertz(206.4), seconds(1.1));
  ctx.frame_delay = seconds(0.0);  // no deadline
  EXPECT_EQ(p->assign(itsy_sa1100(), ctx).comp_level,
            itsy_sa1100().top_level());
}

TEST(Policy, CloneAndName) {
  const auto p = make_dvs_during_io_policy(5);
  const auto q = p->clone();
  EXPECT_EQ(p->name(), q->name());
  EXPECT_FALSE(p->name().empty());
}

// --- Yao-Demers-Shenker ----------------------------------------------------------

TEST(Yao, SingleJobRunsAtExactIntensity) {
  const YaoSchedule s = yao_schedule({{0.0, 10.0, 20.0, 1}});
  ASSERT_EQ(s.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(s.segments()[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(s.segments()[0].end, 10.0);
  EXPECT_DOUBLE_EQ(s.segments()[0].speed, 2.0);
  EXPECT_DOUBLE_EQ(s.total_work(), 20.0);
}

TEST(Yao, ClassicTwoJobExample) {
  // Dense job inside a sparse one: the dense interval is critical and the
  // outer job spreads over the remainder.
  const YaoSchedule s = yao_schedule({
      {0.0, 10.0, 10.0, 1},  // sparse: intensity 1 alone
      {2.0, 4.0, 8.0, 2},    // dense: intensity 4 alone
  });
  // Critical interval [2,4] carries jobs 2 only -> g = 4? With job 1 not
  // contained, g([2,4]) = 8/2 = 4; then job 1 runs in the remaining 8 time
  // units at 10/8 = 1.25.
  EXPECT_DOUBLE_EQ(s.max_speed(), 4.0);
  EXPECT_DOUBLE_EQ(s.speed_at(3.0), 4.0);
  EXPECT_DOUBLE_EQ(s.speed_at(1.0), 1.25);
  EXPECT_DOUBLE_EQ(s.speed_at(7.0), 1.25);
  EXPECT_NEAR(s.total_work(), 18.0, 1e-9);
}

TEST(Yao, DisjointJobsScheduleIndependently) {
  const YaoSchedule s = yao_schedule({
      {0.0, 2.0, 4.0, 1},
      {5.0, 9.0, 4.0, 2},
  });
  EXPECT_DOUBLE_EQ(s.speed_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(s.speed_at(7.0), 1.0);
  EXPECT_DOUBLE_EQ(s.speed_at(3.0), 0.0);  // gap
}

TEST(Yao, EnergyNeverExceedsConstantSpeedSchedule) {
  // The optimum beats (or ties) the minimum feasible constant speed for a
  // convex power function.
  const std::vector<Job> jobs{
      {0.0, 4.0, 6.0, 1}, {1.0, 3.0, 4.0, 2}, {2.0, 8.0, 3.0, 3},
      {5.0, 9.0, 5.0, 4}};
  const YaoSchedule s = yao_schedule(jobs);
  const ConstantSpeedResult c = min_constant_speed(jobs);
  EXPECT_LE(s.energy(3.0), c.energy + 1e-9);
  EXPECT_NEAR(s.total_work(), 6.0 + 4.0 + 3.0 + 5.0, 1e-9);
}

TEST(Yao, MaxSpeedEqualsPeakIntensity) {
  const std::vector<Job> jobs{
      {0.0, 4.0, 6.0, 1}, {1.0, 3.0, 4.0, 2}, {2.0, 8.0, 3.0, 3}};
  const YaoSchedule s = yao_schedule(jobs);
  const ConstantSpeedResult c = min_constant_speed(jobs);
  EXPECT_NEAR(s.max_speed(), c.speed, 1e-9);
}

TEST(Yao, EdfFeasibilityOfSchedule) {
  // Simulate EDF under the schedule's speed function: every job must
  // complete by its deadline.
  std::vector<Job> jobs{
      {0.0, 4.0, 6.0, 1}, {1.0, 3.0, 4.0, 2}, {2.0, 8.0, 3.0, 3},
      {5.0, 9.0, 5.0, 4}, {0.5, 7.0, 2.0, 5}};
  const YaoSchedule s = yao_schedule(jobs);

  std::vector<double> remaining(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) remaining[i] = jobs[i].work;
  const double dt = 1e-3;
  for (double t = 0.0; t < 10.0; t += dt) {
    // Pick the earliest-deadline released, unfinished job.
    int pick = -1;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].arrival > t + 1e-12 || remaining[i] <= 0.0) continue;
      if (pick < 0 ||
          jobs[i].deadline < jobs[static_cast<std::size_t>(pick)].deadline)
        pick = static_cast<int>(i);
    }
    if (pick >= 0)
      remaining[static_cast<std::size_t>(pick)] -= s.speed_at(t) * dt;
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Re-run completion check: all work retired (within integration slop).
    EXPECT_LE(remaining[i], jobs[i].work * 1e-3 + 1e-2) << "job " << i;
  }
}

TEST(Yao, ZeroWorkJobsIgnored) {
  const YaoSchedule s = yao_schedule({{0.0, 5.0, 0.0, 1},
                                      {1.0, 2.0, 2.0, 2}});
  EXPECT_DOUBLE_EQ(s.max_speed(), 2.0);
  EXPECT_NEAR(s.total_work(), 2.0, 1e-12);
}

TEST(Yao, DeterministicAcrossRuns) {
  const std::vector<Job> jobs{
      {0.0, 4.0, 6.0, 1}, {1.0, 3.0, 4.0, 2}, {2.0, 8.0, 3.0, 3}};
  const YaoSchedule a = yao_schedule(jobs);
  const YaoSchedule b = yao_schedule(jobs);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.segments()[i].speed, b.segments()[i].speed);
    EXPECT_DOUBLE_EQ(a.segments()[i].begin, b.segments()[i].begin);
  }
}

TEST(Yao, EnergyExponentMatters) {
  const YaoSchedule s = yao_schedule({{0.0, 2.0, 4.0, 1}});
  // speed 2 for 2 time units: energy = 2^e * 2.
  EXPECT_DOUBLE_EQ(s.energy(2.0), 8.0);
  EXPECT_DOUBLE_EQ(s.energy(3.0), 16.0);
}


// --- buffered DVS (Im et al.) ---------------------------------------------------

TEST(Buffered, ZeroBufferMatchesUnbufferedDemand) {
  const cpu::CpuSpec& c = itsy_sa1100();
  std::vector<Seconds> arrivals;
  for (int f = 0; f < 20; ++f)
    arrivals.push_back(seconds(f * 2.3 + 1.109));
  const Cycles w = work(megahertz(206.4), seconds(1.1));
  const auto a = buffered_min_speed(arrivals, w, seconds(2.3),
                                    seconds(0.085), 0, c);
  // Demand = 1.1 s of work in (2.3 - 1.109 - 0.085) s.
  EXPECT_NEAR(to_megahertz(a.min_speed), 206.4 * 1.1 / 1.106, 0.2);
  EXPECT_DOUBLE_EQ(a.added_latency.value(), 0.0);
}

TEST(Buffered, BufferReducesRequiredSpeedMonotonically) {
  const cpu::CpuSpec& c = itsy_sa1100();
  Rng rng(5);
  std::vector<Seconds> arrivals;
  for (int f = 0; f < 50; ++f)
    arrivals.push_back(
        seconds(f * 2.3 + 1.109 + rng.uniform(-0.2, 0.2)));
  const Cycles w = work(megahertz(206.4), seconds(1.1));
  double prev = 1e18;
  for (int buffer : {0, 1, 2, 4, 8}) {
    const auto a = buffered_min_speed(arrivals, w, seconds(2.3),
                                      seconds(0.085), buffer, c);
    EXPECT_LE(a.min_speed.value(), prev * (1.0 + 1e-12)) << buffer;
    prev = a.min_speed.value();
    EXPECT_NEAR(a.added_latency.value(), buffer * 2.3, 1e-9);
  }
}

TEST(Buffered, JitterRaisesUnbufferedDemandOnly) {
  const cpu::CpuSpec& c = itsy_sa1100();
  const Cycles w = work(megahertz(206.4), seconds(1.1));
  std::vector<Seconds> clean, jittered;
  Rng rng(6);
  for (int f = 0; f < 50; ++f) {
    clean.push_back(seconds(f * 2.3 + 1.109));
    jittered.push_back(seconds(f * 2.3 + 1.109 + rng.uniform(-0.3, 0.3)));
  }
  const auto clean0 = buffered_min_speed(clean, w, seconds(2.3),
                                         seconds(0.085), 0, c);
  const auto jitter0 = buffered_min_speed(jittered, w, seconds(2.3),
                                          seconds(0.085), 0, c);
  EXPECT_GT(jitter0.min_speed.value(), clean0.min_speed.value());
  // With a 2-frame buffer the jittered demand collapses to ~the average.
  const auto jitter2 = buffered_min_speed(jittered, w, seconds(2.3),
                                          seconds(0.085), 2, c);
  EXPECT_LT(to_megahertz(jitter2.min_speed), 103.2);
  EXPECT_GE(jitter2.level, 0);
}

TEST(Buffered, JobsFeedYaoSchedule) {
  const cpu::CpuSpec& c = itsy_sa1100();
  const Cycles w = work(megahertz(100.0), seconds(1.0));
  std::vector<Seconds> arrivals{seconds(0.5), seconds(2.8), seconds(5.1)};
  const auto a =
      buffered_min_speed(arrivals, w, seconds(2.3), seconds(0.1), 1, c);
  ASSERT_EQ(a.jobs.size(), 3u);
  const YaoSchedule s = yao_schedule(a.jobs);
  EXPECT_NEAR(s.total_work(), 3.0 * w.value(), w.value() * 1e-9);
  EXPECT_LE(s.max_speed(), a.min_speed.value() * (1.0 + 1e-9));
}

}  // namespace
}  // namespace deslp::dvs
