// Topology layer conformance (core/topology.h): the identity pipeline
// topology must reproduce the legacy PipelineSystem bit for bit (N = 1
// and N = 2, the paper's shapes), holder_of must match the closed-form
// rotation ring the pre-topology code used, and malformed topologies must
// be rejected with a specific reason rather than misrouting frames.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "atr/profile.h"
#include "battery/kibam.h"
#include "core/scenario.h"
#include "core/system.h"
#include "core/topology.h"
#include "task/partition.h"

namespace deslp::core {
namespace {

SystemConfig base_config(int stages, long long rotation) {
  SystemConfig sys;
  sys.cpu = &cpu::itsy_sa1100();
  sys.profile = &atr::itsy_atr_profile();
  sys.link = net::itsy_serial_link();
  sys.battery_factory = [] {
    return battery::make_kibam_battery(
        battery::KibamParams{milliamp_hours(8.0), 0.3, 5e-4});
  };
  sys.frame_delay = seconds(2.3);
  sys.max_frames = 2000;
  sys.seed = 42;
  sys.rotation_period = rotation;

  const auto analyses = task::analyze_all_partitions(
      *sys.profile, stages, *sys.cpu, sys.link, sys.frame_delay);
  const int best = task::best_partition_index(analyses);
  EXPECT_GE(best, 0);
  const auto& a = analyses[static_cast<std::size_t>(best)];
  sys.partition = a.partition;
  for (const auto& s : a.stages) sys.stage_levels.push_back({s.min_level, 0, 0});
  return sys;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_completed, b.frames_completed);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_DOUBLE_EQ(a.sim_end.value(), b.sim_end.value());
  EXPECT_DOUBLE_EQ(a.last_completion.value(), b.last_completion.value());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].died, b.nodes[i].died);
    EXPECT_DOUBLE_EQ(a.nodes[i].death_time.value(),
                     b.nodes[i].death_time.value());
    EXPECT_DOUBLE_EQ(a.nodes[i].charge_used.value(),
                     b.nodes[i].charge_used.value());
    EXPECT_DOUBLE_EQ(a.nodes[i].energy_used.value(),
                     b.nodes[i].energy_used.value());
    EXPECT_DOUBLE_EQ(a.nodes[i].final_soc, b.nodes[i].final_soc);
    EXPECT_EQ(a.nodes[i].rotations, b.nodes[i].rotations);
  }
}

// The explicit identity topology must be indistinguishable — bit for bit,
// in every metric — from leaving SystemConfig::topology unset, at both of
// the paper's node counts and with rotation exercising holder_of.
TEST(TopologyConformance, IdentityTopologyIsBitIdenticalToLegacy) {
  const struct {
    int stages;
    long long rotation;
  } kShapes[] = {{1, 0}, {2, 0}, {2, 40}};
  for (const auto& shape : kShapes) {
    SCOPED_TRACE("stages=" + std::to_string(shape.stages) +
                 " rotation=" + std::to_string(shape.rotation));
    SystemConfig legacy = base_config(shape.stages, shape.rotation);
    SystemConfig topo = base_config(shape.stages, shape.rotation);
    topo.topology = Topology::pipeline(shape.stages);

    PipelineSystem sys_a(std::move(legacy));
    const RunResult a = sys_a.run();
    PipelineSystem sys_b(std::move(topo));
    expect_identical(a, sys_b.run());
  }
}

// holder_of is the rotation ring the pre-topology code computed inline:
// role r in era e lives on node ((r - e) mod n) + 1. Sweep the property
// well past one full rotation cycle at every pipeline width.
TEST(TopologyConformance, HolderOfMatchesClosedFormRotationRing) {
  for (int n = 1; n <= 6; ++n) {
    const Topology t = Topology::pipeline(n);
    for (long long era = 0; era <= 3 * n + 1; ++era) {
      for (int role = 0; role < n; ++role) {
        const int expected = static_cast<int>(((role - era) % n + n) % n) + 1;
        EXPECT_EQ(t.holder_of(role, era), expected)
            << "n=" << n << " role=" << role << " era=" << era;
      }
    }
  }
}

TEST(TopologyValidate, AcceptsPipelineAndFleetShapes) {
  std::string error;
  EXPECT_TRUE(Topology::pipeline(1).validate(&error)) << error;
  EXPECT_TRUE(Topology::pipeline(4).validate(&error)) << error;
  EXPECT_TRUE(Topology::fleet(10, 3).validate(&error)) << error;
  EXPECT_TRUE(Topology::fleet(1, 1).validate(&error)) << error;
}

TEST(TopologyValidate, RejectsOrphanStage) {
  Topology t = Topology::pipeline(2);
  t.stage_holder[1] = 5;  // no such node
  std::string error;
  EXPECT_FALSE(t.validate(&error));
  EXPECT_NE(error.find("orphan stage"), std::string::npos) << error;
}

TEST(TopologyValidate, RejectsDuplicateRole) {
  Topology t = Topology::pipeline(2);
  t.stage_holder[1] = 0;  // node 0 would hold both stages
  std::string error;
  EXPECT_FALSE(t.validate(&error));
  EXPECT_NE(error.find("duplicate role"), std::string::npos) << error;
}

TEST(TopologyValidate, RejectsUnreachableNode) {
  Topology t = Topology::pipeline(2);
  t.nodes = 3;  // node 2 holds no stage and belongs to no cluster
  std::string error;
  EXPECT_FALSE(t.validate(&error));
  EXPECT_NE(error.find("unreachable node"), std::string::npos) << error;
}

TEST(TopologyValidate, RejectsEmptyCluster) {
  Topology t = Topology::fleet(4, 2);
  // Cluster ids are a dense range [0, max+1); pushing cluster 1's members
  // to a new cluster 2 leaves id 1 as a memberless gap.
  for (auto& c : t.cluster_of)
    if (c == 1) c = 2;
  std::string error;
  EXPECT_FALSE(t.validate(&error));
  EXPECT_NE(error.find("no members"), std::string::npos) << error;
}

// PipelineSystem is the dense special case: a sparse fleet topology (or a
// stage count that disagrees with the partition) must be refused at
// construction, not silently misrouted.
TEST(TopologyConformance, PipelineRejectsNonPipelineTopology) {
  SystemConfig sys = base_config(2, 0);
  sys.topology = Topology::fleet(2, 1);  // clusters, no stages
  EXPECT_DEATH(
      { PipelineSystem rejected(std::move(sys)); }, "");
}

// Regression for the hard-coded "[1, 4]" in the scenario stage check: the
// upper bound is the ATR profile's block count, not a literal.
TEST(TopologyScenario, StageBoundMessageTracksProfileBlockCount) {
  const std::string text = R"([pipeline]
stages = 99
)";
  auto cfg = Config::parse(text);
  ASSERT_TRUE(cfg.has_value());
  std::string error;
  EXPECT_FALSE(run_scenario(*cfg, &error).has_value());
  const int blocks = atr::itsy_atr_profile().block_count();
  EXPECT_NE(error.find("[1, " + std::to_string(blocks) + "]"),
            std::string::npos)
      << error;
}

}  // namespace
}  // namespace deslp::core
