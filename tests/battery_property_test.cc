// Property tests that must hold for EVERY battery model: monotonicity in
// load, pointwise dominance, exact step accounting, reset/clone semantics.
// Parameterised over the four model families and a sweep of currents.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "battery/battery.h"
#include "battery/kibam.h"
#include "battery/load.h"
#include "battery/rakhmatov.h"
#include "util/rng.h"

namespace deslp::battery {
namespace {

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<Battery>()> make;
};

class BatteryModelTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(BatteryModelTest, FreshBatteryIsFull) {
  auto b = GetParam().make();
  EXPECT_FALSE(b->empty());
  EXPECT_NEAR(b->state_of_charge(), 1.0, 1e-9);
  EXPECT_GT(b->nominal_remaining().value(), 0.0);
}

TEST_P(BatteryModelTest, LifetimeMonotoneDecreasingInCurrent) {
  auto b = GetParam().make();
  double prev = b->time_to_empty(milliamps(20.0)).value();
  for (double ma : {40.0, 80.0, 160.0, 320.0, 640.0}) {
    const double t = b->time_to_empty(milliamps(ma)).value();
    EXPECT_LT(t, prev) << "at " << ma << " mA";
    prev = t;
  }
}

TEST_P(BatteryModelTest, TimeToEmptyConsistentWithDischarge) {
  auto b = GetParam().make();
  const Seconds tte = b->time_to_empty(milliamps(150.0));
  const Seconds sustained = b->discharge(milliamps(150.0), tte * 2.0);
  EXPECT_NEAR(sustained.value(), tte.value(),
              std::max(1e-6, tte.value() * 1e-5));
  EXPECT_TRUE(b->empty());
}

TEST_P(BatteryModelTest, SplitStepsEqualOneStep) {
  // Drawing I for t in many small steps must land in the same state as one
  // big step (piecewise-constant stepping must be exact, not integrated).
  auto a = GetParam().make();
  auto b = GetParam().make();
  a->discharge(milliamps(120.0), seconds(1000.0));
  for (int i = 0; i < 1000; ++i) b->discharge(milliamps(120.0), seconds(1.0));
  EXPECT_NEAR(a->nominal_remaining().value(), b->nominal_remaining().value(),
              std::abs(a->nominal_remaining().value()) * 1e-7 + 1e-9);
  EXPECT_NEAR(a->time_to_empty(milliamps(120.0)).value(),
              b->time_to_empty(milliamps(120.0)).value(), 1e-3);
}

TEST_P(BatteryModelTest, PointwiseLowerLoadLastsAtLeastAsLong) {
  // Profile B's current is <= profile A's at every instant => B's lifetime
  // must be >= A's. (This is the physics behind T(1A) >= T(1).)
  auto a = GetParam().make();
  auto b = GetParam().make();
  const LifetimeResult ra = lifetime_under_cycle(
      *a, {{milliamps(130.0), seconds(1.1)}, {milliamps(110.0),
                                              seconds(1.2)}});
  const LifetimeResult rb = lifetime_under_cycle(
      *b, {{milliamps(130.0), seconds(1.1)}, {milliamps(40.0),
                                              seconds(1.2)}});
  EXPECT_GE(rb.lifetime.value(), ra.lifetime.value() * 0.999);
}

TEST_P(BatteryModelTest, DeadBatterySustainsNothing) {
  auto b = GetParam().make();
  b->discharge(amps(1.0), hours(1000.0));
  EXPECT_TRUE(b->empty());
  EXPECT_DOUBLE_EQ(b->discharge(milliamps(1.0), seconds(10.0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(b->time_to_empty(milliamps(1.0)).value(), 0.0);
}

TEST_P(BatteryModelTest, ResetRestoresInitialState) {
  auto b = GetParam().make();
  const double t0 = b->time_to_empty(milliamps(100.0)).value();
  b->discharge(milliamps(100.0), hours(2.0));
  b->reset();
  EXPECT_FALSE(b->empty());
  EXPECT_NEAR(b->time_to_empty(milliamps(100.0)).value(), t0, t0 * 1e-9);
}

TEST_P(BatteryModelTest, CloneMatchesThenDiverges) {
  auto a = GetParam().make();
  a->discharge(milliamps(100.0), seconds(500.0));
  auto b = a->clone();
  EXPECT_NEAR(a->time_to_empty(milliamps(100.0)).value(),
              b->time_to_empty(milliamps(100.0)).value(), 1e-6);
  a->discharge(milliamps(100.0), seconds(500.0));
  EXPECT_GT(b->time_to_empty(milliamps(100.0)).value(),
            a->time_to_empty(milliamps(100.0)).value());
}

TEST_P(BatteryModelTest, DescribeIsNonEmpty) {
  EXPECT_FALSE(GetParam().make()->describe().empty());
}

TEST_P(BatteryModelTest, RandomisedScheduleNeverOverdraws) {
  // Under an arbitrary load schedule the battery delivers at most its
  // nominal capacity, and state_of_charge stays within [0, 1].
  auto b = GetParam().make();
  Rng rng(99);
  double delivered = 0.0;
  for (int i = 0; i < 500 && !b->empty(); ++i) {
    const double ma = rng.uniform(0.0, 400.0);
    const double dt = rng.uniform(0.1, 30.0);
    const Seconds sustained = b->discharge(milliamps(ma), seconds(dt));
    delivered += ma * 1e-3 * sustained.value();
    EXPECT_GE(b->state_of_charge(), -1e-9);
    EXPECT_LE(b->state_of_charge(), 1.0 + 1e-9);
  }
  // Peukert can deliver above nominal when segments run below the
  // reference current, so this is a runaway guard, not a tight bound.
  EXPECT_LE(delivered, milliamp_hours(5000.0).value());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BatteryModelTest,
    ::testing::Values(
        ModelCase{"ideal",
                  [] { return make_ideal_battery(milliamp_hours(1000.0)); }},
        ModelCase{"peukert",
                  [] {
                    return make_peukert_battery(milliamp_hours(1000.0), 1.3,
                                                milliamps(100.0));
                  }},
        ModelCase{"kibam",
                  [] {
                    return make_kibam_battery(
                        KibamParams{milliamp_hours(1000.0), 0.3, 5e-4});
                  }},
        ModelCase{"kibam_itsy",
                  [] { return make_kibam_battery(itsy_kibam_params()); }},
        ModelCase{"rakhmatov",
                  [] {
                    return make_rakhmatov_battery(
                        RakhmatovParams{milliamp_hours(1000.0), 3e-4, 10});
                  }}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace deslp::battery
