#include <gtest/gtest.h>

#include "core/scenario.h"

namespace deslp::core {
namespace {

Config parse(const std::string& text) {
  auto cfg = Config::parse(text);
  EXPECT_TRUE(cfg.has_value());
  return *cfg;
}

TEST(Scenario, DefaultScenarioReproduces2A) {
  const auto outcome = run_scenario(parse(default_scenario_text()));
  ASSERT_TRUE(outcome.has_value());
  // (2A): 14.29 h on the calibrated models.
  EXPECT_NEAR(to_hours(outcome->battery_life), 14.29, 0.3);
  EXPECT_NE(outcome->description.find("59 MHz"), std::string::npos);
  EXPECT_NE(outcome->description.find("103.2 MHz"), std::string::npos);
}

TEST(Scenario, RotationScenarioMatchesExperiment2C) {
  auto cfg = parse(R"(
[pipeline]
stages = 2
[technique]
rotation_period = 100
)");
  const auto outcome = run_scenario(cfg);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_NEAR(to_hours(outcome->battery_life), 17.80, 0.3);
  ASSERT_EQ(outcome->run.nodes.size(), 2u);
  EXPECT_GT(outcome->run.nodes[0].rotations, 100);
}

TEST(Scenario, ExplicitLevelsAndCuts) {
  auto cfg = parse(R"(
[pipeline]
stages = 2
cuts = 2
levels_mhz = 206.4, 118.0
)");
  const auto outcome = run_scenario(cfg);
  ASSERT_TRUE(outcome.has_value());
  // (TD+FFT)(IFFT+CD) at 206.4/118.
  EXPECT_NE(outcome->description.find("Target Detection + FFT)"),
            std::string::npos);
  EXPECT_NE(outcome->description.find("206.4 MHz"), std::string::npos);
}

TEST(Scenario, SingleNodeBaseline) {
  auto cfg = parse(R"(
[pipeline]
stages = 1
dvs_during_io = false
)");
  const auto outcome = run_scenario(cfg);
  ASSERT_TRUE(outcome.has_value());
  // Experiment (1): ~4.76 h.
  EXPECT_NEAR(to_hours(outcome->battery_life), 4.76, 0.2);
}

TEST(Scenario, RejectsInfeasibleLevels) {
  std::string error;
  auto cfg = parse(R"(
[pipeline]
stages = 2
levels_mhz = 59.0, 59.0
)");
  EXPECT_FALSE(run_scenario(cfg, &error).has_value());
  EXPECT_NE(error.find("below the minimum feasible"), std::string::npos);
}

TEST(Scenario, RejectsContradictoryTechniques) {
  std::string error;
  auto cfg = parse(R"(
[pipeline]
stages = 2
[technique]
acks = true
rotation_period = 10
)");
  EXPECT_FALSE(run_scenario(cfg, &error).has_value());
  EXPECT_NE(error.find("mutually exclusive"), std::string::npos);
}

TEST(Scenario, RejectsInfeasibleLink) {
  std::string error;
  auto cfg = parse(R"(
[link]
preset = custom
line_kbps = 40
effective_kbps = 30
)");
  EXPECT_FALSE(run_scenario(cfg, &error).has_value());
  EXPECT_NE(error.find("no feasible"), std::string::npos);
}

TEST(Scenario, ReportsBadValues) {
  std::string error;
  auto cfg = parse(R"(
[system]
frame_delay = abc
)");
  EXPECT_FALSE(run_scenario(cfg, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Scenario, CustomBatteryModels) {
  for (const char* model : {"ideal", "peukert", "kibam", "rakhmatov"}) {
    auto cfg = parse(std::string(R"(
[battery]
model = )") + model + R"(
capacity_mah = 30
[pipeline]
stages = 1
)");
    const auto outcome = run_scenario(cfg);
    ASSERT_TRUE(outcome.has_value()) << model;
    EXPECT_NE(outcome->description.find(model), std::string::npos);
    EXPECT_GT(outcome->run.frames_completed, 10) << model;
  }
}


TEST(Scenario, VariableWorkloadSection) {
  auto cfg = parse(R"(
[battery]
capacity_mah = 60
[pipeline]
stages = 1
[workload]
min_scale = 0.4
adaptive = true
)");
  const auto outcome = run_scenario(cfg);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_GT(outcome->run.frames_completed, 60);

  std::string error;
  auto bad = parse("[workload]\nmin_scale = 1.5\n");
  EXPECT_FALSE(run_scenario(bad, &error).has_value());
  EXPECT_NE(error.find("max_scale"), std::string::npos);
}

TEST(Scenario, ShippedScenarioFilesAreValid) {
  for (const char* path :
       {"examples/scenarios/rotation.ini", "examples/scenarios/recovery.ini",
        "examples/scenarios/fast_link_ideal_battery.ini"}) {
    std::string error;
    auto cfg = Config::load(std::string(PROJECT_SOURCE_DIR) + "/" + path,
                            &error);
    ASSERT_TRUE(cfg.has_value()) << path << ": " << error;
    // Shrink the battery so the full run stays fast.
    auto text_cfg = *cfg;
    (void)text_cfg;
    const auto outcome = run_scenario(*cfg, &error);
    ASSERT_TRUE(outcome.has_value()) << path << ": " << error;
    EXPECT_GT(outcome->run.frames_completed, 100) << path;
  }
}

}  // namespace
}  // namespace deslp::core
