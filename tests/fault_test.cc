// Unit tests for the deterministic fault-injection layer (DESIGN.md §10):
// event parsing and validation, plan construction from config, and the
// Runtime's window state machine driven by engine events.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.h"
#include "sim/engine.h"
#include "util/config.h"

namespace deslp::fault {
namespace {

sim::Time at_seconds(double s) {
  return sim::Time{0} + sim::from_seconds(seconds(s));
}

// ---------------------------------------------------------------------------
// Parsing.

TEST(FaultParse, EveryKindParses) {
  std::string err;
  const auto blackout =
      FaultPlan::parse_event("blackout target=2 at=120 dur=30", &err);
  ASSERT_TRUE(blackout.has_value()) << err;
  EXPECT_EQ(blackout->kind, FaultKind::kLinkBlackout);
  EXPECT_EQ(blackout->target, 2);
  EXPECT_DOUBLE_EQ(blackout->at.value(), 120.0);
  EXPECT_DOUBLE_EQ(blackout->duration.value(), 30.0);

  const auto degrade =
      FaultPlan::parse_event("rate_degrade at=10 dur=5 factor=0.25", &err);
  ASSERT_TRUE(degrade.has_value()) << err;
  EXPECT_EQ(degrade->kind, FaultKind::kRateDegrade);
  EXPECT_EQ(degrade->target, 0);  // all links
  EXPECT_DOUBLE_EQ(degrade->magnitude, 0.25);

  const auto burst =
      FaultPlan::parse_event("burst_loss at=200 dur=50 p=0.3", &err);
  ASSERT_TRUE(burst.has_value()) << err;
  EXPECT_EQ(burst->kind, FaultKind::kBurstLoss);
  EXPECT_DOUBLE_EQ(burst->magnitude, 0.3);

  ASSERT_TRUE(FaultPlan::parse_event("ack_suppress at=5 dur=1", &err)) << err;
  ASSERT_TRUE(FaultPlan::parse_event("corrupt at=5 dur=1 p=1", &err)) << err;
  ASSERT_TRUE(FaultPlan::parse_event("brownout target=1 at=300 dur=10", &err))
      << err;
  ASSERT_TRUE(FaultPlan::parse_event("sudden_death target=2 at=500", &err))
      << err;
  const auto cap =
      FaultPlan::parse_event("capacity_scale target=1 factor=0.8", &err);
  ASSERT_TRUE(cap.has_value()) << err;
  EXPECT_EQ(cap->kind, FaultKind::kCapacityScale);
}

TEST(FaultParse, RejectsMalformedEvents) {
  const std::vector<std::string> bad = {
      "",                                    // empty
      "meteor_strike at=1",                  // unknown kind
      "blackout when=1",                     // unknown key
      "blackout at",                         // key without '='
      "blackout at=soon",                    // non-numeric value
      "blackout at=1 dur=-1",                // negative duration
      "blackout at=-1",                      // negative start
      "blackout target=-2 at=1",             // negative target
      "burst_loss at=1 dur=1",               // missing p
      "burst_loss at=1 dur=1 p=1.5",         // p out of range
      "rate_degrade at=1 dur=1 factor=0",    // factor must be > 0
      "rate_degrade at=1 dur=1 factor=2",    // factor must be <= 1
      "brownout target=1 at=1",              // brownout needs dur > 0
      "brownout at=1 dur=5",                 // node kind needs target
      "sudden_death at=1",                   // node kind needs target
      "capacity_scale factor=0.5",           // needs a node target
  };
  for (const std::string& text : bad) {
    std::string err;
    EXPECT_FALSE(FaultPlan::parse_event(text, &err).has_value())
        << "accepted: " << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(FaultPlanConfig, MissingSectionYieldsEmptyPlan) {
  std::string err;
  const auto cfg = Config::parse("[system]\nframe_delay = 2.3\n", &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  const auto plan = FaultPlan::from_config(*cfg, &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlanConfig, ParsesSeedAndEventsSorted) {
  std::string err;
  const auto cfg = Config::parse(
      "[fault]\n"
      "seed = 99\n"
      "event1 = sudden_death target=2 at=500\n"
      "event2 = blackout target=1 at=20 dur=5\n",
      &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  const auto plan = FaultPlan::from_config(*cfg, &err);
  ASSERT_TRUE(plan.has_value()) << err;
  EXPECT_EQ(plan->seed, 99u);
  ASSERT_EQ(plan->events.size(), 2u);
  // Sorted by start time regardless of key order.
  EXPECT_EQ(plan->events[0].kind, FaultKind::kLinkBlackout);
  EXPECT_EQ(plan->events[1].kind, FaultKind::kSuddenDeath);
}

TEST(FaultPlanConfig, RejectsUnknownKeysAndBadEvents) {
  std::string err;
  const auto unknown = Config::parse("[fault]\nchaos = yes\n", &err);
  ASSERT_TRUE(unknown.has_value()) << err;
  EXPECT_FALSE(FaultPlan::from_config(*unknown, &err).has_value());
  EXPECT_NE(err.find("chaos"), std::string::npos);

  const auto bad = Config::parse("[fault]\nevent1 = blackout at=-3\n", &err);
  ASSERT_TRUE(bad.has_value()) << err;
  EXPECT_FALSE(FaultPlan::from_config(*bad, &err).has_value());
  EXPECT_NE(err.find("event1"), std::string::npos);
}

TEST(FaultPlanTest, CapacityFactorMultipliesPerNode) {
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kCapacityScale, 1, seconds(0.0), seconds(0.0), 0.5});
  plan.events.push_back(
      {FaultKind::kCapacityScale, 1, seconds(0.0), seconds(0.0), 0.8});
  plan.events.push_back(
      {FaultKind::kCapacityScale, 2, seconds(0.0), seconds(0.0), 0.9});
  EXPECT_DOUBLE_EQ(plan.capacity_factor(1), 0.4);
  EXPECT_DOUBLE_EQ(plan.capacity_factor(2), 0.9);
  EXPECT_DOUBLE_EQ(plan.capacity_factor(3), 1.0);
}

TEST(FaultPlanTest, SummaryNamesEveryEvent) {
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kLinkBlackout, 2, seconds(120.0), seconds(30.0), 1.0});
  plan.events.push_back(
      {FaultKind::kBurstLoss, 0, seconds(200.0), seconds(50.0), 0.3});
  const std::string s = plan.summary();
  EXPECT_NE(s.find("2 faults"), std::string::npos);
  EXPECT_NE(s.find("blackout(node2 @120s +30s)"), std::string::npos);
  EXPECT_NE(s.find("burst_loss(@200s +50s p=0.3)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Runtime windows.

TEST(FaultRuntime, BlackoutWindowTogglesWithSimTime) {
  sim::Engine engine;
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kLinkBlackout, 2, seconds(10.0), seconds(5.0), 1.0});
  Runtime rt(engine, plan);
  rt.arm();

  EXPECT_FALSE(rt.blackout(1, 2));
  engine.run_until(at_seconds(12.0));
  EXPECT_TRUE(rt.blackout(1, 2));   // dst matches
  EXPECT_TRUE(rt.blackout(2, 1));   // src matches
  EXPECT_FALSE(rt.blackout(1, 3));  // unrelated link untouched
  EXPECT_EQ(rt.injections(), 1);
  ASSERT_TRUE(rt.outage_start(2).has_value());
  EXPECT_EQ(*rt.outage_start(2), at_seconds(10.0));
  EXPECT_FALSE(rt.outage_start(1).has_value());

  engine.run_until(at_seconds(20.0));
  EXPECT_FALSE(rt.blackout(1, 2));
  EXPECT_FALSE(rt.outage_start(2).has_value());
}

TEST(FaultRuntime, GlobalTargetCoversEveryLink) {
  sim::Engine engine;
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kLinkBlackout, 0, seconds(1.0), seconds(0.0), 1.0});
  Runtime rt(engine, plan);
  rt.arm();
  engine.run_until(at_seconds(2.0));
  EXPECT_TRUE(rt.blackout(1, 2));
  EXPECT_TRUE(rt.blackout(3, 4));
  // Open-ended window (dur=0) never lifts.
  engine.run_until(at_seconds(1e6));
  EXPECT_TRUE(rt.blackout(1, 2));
}

TEST(FaultRuntime, RateDegradeWindowsCompound) {
  sim::Engine engine;
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kRateDegrade, 0, seconds(1.0), seconds(10.0), 0.5});
  plan.events.push_back(
      {FaultKind::kRateDegrade, 2, seconds(2.0), seconds(10.0), 0.25});
  Runtime rt(engine, plan);
  rt.arm();
  EXPECT_DOUBLE_EQ(rt.wire_time_factor(1, 2), 1.0);
  engine.run_until(at_seconds(1.5));
  EXPECT_DOUBLE_EQ(rt.wire_time_factor(1, 2), 2.0);
  engine.run_until(at_seconds(3.0));
  EXPECT_DOUBLE_EQ(rt.wire_time_factor(1, 2), 8.0);  // both windows
  EXPECT_DOUBLE_EQ(rt.wire_time_factor(3, 4), 2.0);  // only the global one
}

TEST(FaultRuntime, ProbabilisticDrawsRespectWindowsAndExtremes) {
  sim::Engine engine;
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kBurstLoss, 0, seconds(1.0), seconds(10.0), 1.0});
  plan.events.push_back(
      {FaultKind::kCorrupt, 0, seconds(1.0), seconds(10.0), 0.0});
  Runtime rt(engine, plan);
  rt.arm();
  // Outside every window: no draws, nothing lost.
  EXPECT_FALSE(rt.lose_message(1, 2));
  EXPECT_FALSE(rt.corrupt_segment());
  engine.run_until(at_seconds(2.0));
  EXPECT_TRUE(rt.lose_message(1, 2));   // p = 1
  EXPECT_FALSE(rt.corrupt_segment());   // p = 0
}

TEST(FaultRuntime, AckSuppressionWindow) {
  sim::Engine engine;
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kAckSuppress, 0, seconds(5.0), seconds(5.0), 1.0});
  Runtime rt(engine, plan);
  rt.arm();
  EXPECT_FALSE(rt.ack_suppressed());
  engine.run_until(at_seconds(6.0));
  EXPECT_TRUE(rt.ack_suppressed());
  engine.run_until(at_seconds(11.0));
  EXPECT_FALSE(rt.ack_suppressed());
}

TEST(FaultRuntime, NodeHooksFireOnBrownoutAndSuddenDeath) {
  sim::Engine engine;
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kBrownout, 1, seconds(10.0), seconds(5.0), 1.0});
  plan.events.push_back(
      {FaultKind::kSuddenDeath, 2, seconds(20.0), seconds(0.0), 1.0});
  Runtime rt(engine, plan);
  int n1_fail = 0, n1_revive = 0, n2_fail = 0, n2_revive = 0;
  rt.set_node_hooks(1, {[&](const FaultEvent&) { ++n1_fail; },
                        [&](const FaultEvent&) { ++n1_revive; }});
  rt.set_node_hooks(2, {[&](const FaultEvent&) { ++n2_fail; },
                        [&](const FaultEvent&) { ++n2_revive; }});
  rt.arm();

  engine.run_until(at_seconds(12.0));
  EXPECT_EQ(n1_fail, 1);
  EXPECT_EQ(n1_revive, 0);
  ASSERT_TRUE(rt.outage_start(1).has_value());
  EXPECT_EQ(*rt.outage_start(1), at_seconds(10.0));

  engine.run_until(at_seconds(16.0));
  EXPECT_EQ(n1_revive, 1);
  EXPECT_FALSE(rt.outage_start(1).has_value());

  engine.run_until(at_seconds(25.0));
  EXPECT_EQ(n2_fail, 1);
  EXPECT_EQ(n2_revive, 0);  // sudden death never lifts
  EXPECT_TRUE(rt.outage_start(2).has_value());
  EXPECT_EQ(rt.injections(), 2);  // lifts are not injections
}

TEST(FaultRuntime, DrawStreamIsSeedDeterministic) {
  auto draw_pattern = [](std::uint64_t seed) {
    sim::Engine engine;
    FaultPlan plan;
    plan.seed = seed;
    plan.events.push_back(
        {FaultKind::kBurstLoss, 0, seconds(0.0), seconds(0.0), 0.5});
    Runtime rt(engine, plan);
    rt.arm();
    engine.run_until(at_seconds(1.0));
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(rt.lose_message(1, 2));
    return pattern;
  };
  EXPECT_EQ(draw_pattern(7), draw_pattern(7));
  EXPECT_NE(draw_pattern(7), draw_pattern(8));
}

}  // namespace
}  // namespace deslp::fault
