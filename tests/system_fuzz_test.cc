// Randomized configuration fuzz for the pipeline system: random feasible
// partitions, level assignments, rotation periods, ack settings, battery
// sizes — and random small fault plans — must always satisfy the run
// invariants: no crashes, no phantom frames, deterministic replay,
// conserved charge accounting.
#include <gtest/gtest.h>

#include <memory>

#include "battery/kibam.h"
#include "core/experiment.h"
#include "core/system.h"
#include "fault/fault.h"
#include "task/partition.h"
#include "util/rng.h"

namespace deslp::core {
namespace {

SystemConfig random_config(Rng& rng) {
  SystemConfig sys;
  sys.cpu = &cpu::itsy_sa1100();
  sys.profile = &atr::itsy_atr_profile();
  sys.link = net::itsy_serial_link();
  const double mah = rng.uniform(5.0, 60.0);
  sys.battery_factory = [mah] {
    return battery::make_kibam_battery(
        battery::KibamParams{milliamp_hours(mah), 0.3, 5e-4});
  };
  sys.frame_delay = seconds(2.3);
  const int stages = 1 + static_cast<int>(rng.below(3));  // 1..3

  // Pick a random *feasible* partition of that depth.
  const auto analyses = task::analyze_all_partitions(
      *sys.profile, stages, *sys.cpu, sys.link, sys.frame_delay);
  std::vector<const task::PartitionAnalysis*> feasible;
  for (const auto& a : analyses)
    if (a.feasible()) feasible.push_back(&a);
  if (feasible.empty()) return random_config(rng);  // retry another depth
  const auto& a = *feasible[rng.below(feasible.size())];
  sys.partition = a.partition;
  for (const auto& s : a.stages) {
    // Any level from the minimum feasible to the top.
    const int span = sys.cpu->level_count() - s.min_level;
    const int comp =
        s.min_level + static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(span)));
    const bool dvs_io = rng.chance(0.5);
    sys.stage_levels.push_back({comp, dvs_io ? 0 : comp, dvs_io ? 0 : comp});
  }
  if (stages >= 2) {
    if (rng.chance(0.4)) {
      sys.rotation_period = 1 + static_cast<long long>(rng.below(200));
    } else if (rng.chance(0.5)) {
      sys.use_acks = true;
      sys.migrated_levels = {sys.cpu->top_level(), 0, 0};
    }
  }
  sys.max_frames = 3000;
  sys.seed = rng();
  return sys;
}

// A small random fault plan sized for the short fuzz batteries: one to
// three events drawn across every archetype, starting inside the first few
// simulated minutes.
fault::FaultPlan random_fault_plan(Rng& rng, int stages) {
  fault::FaultPlan plan;
  plan.seed = rng();
  const int count = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < count; ++i) {
    fault::FaultEvent e;
    e.kind = static_cast<fault::FaultKind>(
        rng.below(static_cast<std::uint64_t>(fault::kFaultKindCount)));
    const bool node_kind = e.kind == fault::FaultKind::kBrownout ||
                           e.kind == fault::FaultKind::kSuddenDeath ||
                           e.kind == fault::FaultKind::kCapacityScale;
    e.target = node_kind
                   ? 1 + static_cast<int>(rng.below(
                             static_cast<std::uint64_t>(stages)))
                   : static_cast<int>(rng.below(
                         static_cast<std::uint64_t>(stages) + 1));
    e.at = seconds(rng.uniform(10.0, 300.0));
    e.duration = seconds(rng.chance(0.3) ? 0.0 : rng.uniform(5.0, 120.0));
    if (e.kind == fault::FaultKind::kBrownout && e.duration.value() <= 0.0)
      e.duration = seconds(10.0);
    e.magnitude = e.kind == fault::FaultKind::kRateDegrade ||
                          e.kind == fault::FaultKind::kCapacityScale
                      ? rng.uniform(0.25, 1.0)
                      : rng.uniform(0.0, 1.0);
    plan.events.push_back(e);
  }
  plan.normalize();
  return plan;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, InvariantsHoldUnderRandomConfigurations) {
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    SystemConfig sys = random_config(rng);
    const std::size_t stages = sys.stage_levels.size();
    const double mah_total_guard = 70.0 * 3.6;  // coulombs upper bound/node

    PipelineSystem system(std::move(sys));
    const RunResult r = system.run();

    // No phantom frames: completions never exceed what the host sent.
    EXPECT_LE(r.frames_completed, r.frames_sent);
    EXPECT_GE(r.frames_completed, 0);
    EXPECT_EQ(r.nodes.size(), stages);
    for (const auto& n : r.nodes) {
      // Charge accounting is bounded by the battery that was installed.
      EXPECT_LE(n.charge_used.value(), mah_total_guard * 1.01);
      EXPECT_GE(n.final_soc, -1e-9);
      EXPECT_LE(n.final_soc, 1.0 + 1e-9);
      // A dead node died within the run.
      if (n.died) {
        EXPECT_GT(n.death_time.value(), 0.0);
        EXPECT_LE(n.death_time.value(), r.sim_end.value() + 1e-6);
      }
      // Residency adds up to no more than the run length, plus at most
      // one in-flight segment (accounting happens at segment start, and
      // the watchdog may stop the engine mid-segment).
      EXPECT_LE((n.comm_time + n.comp_time + n.idle_time).value(),
                r.sim_end.value() + 3.0);
    }
    // Time only moves forward.
    EXPECT_LE(r.last_completion.value(), r.sim_end.value() + 1e-9);
  }
}

TEST_P(PipelineFuzz, RunsAreDeterministic) {
  Rng rng(GetParam() ^ 0xD5D5D5D5ULL);
  SystemConfig sys = random_config(rng);
  SystemConfig copy = sys;  // same everything, incl. seed
  PipelineSystem sys_a(std::move(sys));
  PipelineSystem sys_b(std::move(copy));
  const RunResult a = sys_a.run();
  const RunResult b = sys_b.run();
  EXPECT_EQ(a.frames_completed, b.frames_completed);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_DOUBLE_EQ(a.sim_end.value(), b.sim_end.value());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].died, b.nodes[i].died);
    EXPECT_DOUBLE_EQ(a.nodes[i].charge_used.value(),
                     b.nodes[i].charge_used.value());
    EXPECT_EQ(a.nodes[i].rotations, b.nodes[i].rotations);
  }
}

TEST_P(PipelineFuzz, InvariantsHoldUnderRandomFaultPlans) {
  Rng rng(GetParam() ^ 0xFA17FA17ULL);
  for (int round = 0; round < 3; ++round) {
    SystemConfig sys = random_config(rng);
    sys.faults = random_fault_plan(
        rng, static_cast<int>(sys.stage_levels.size()));
    const std::size_t stages = sys.stage_levels.size();
    SystemConfig copy = sys;

    PipelineSystem system(std::move(sys));
    const RunResult r = system.run();

    EXPECT_LE(r.frames_completed, r.frames_sent);
    EXPECT_GE(r.frames_completed, 0);
    EXPECT_GE(r.frames_lost, 0);
    EXPECT_EQ(r.nodes.size(), stages);
    for (const auto& n : r.nodes) {
      EXPECT_LE(n.charge_used.value(), 70.0 * 3.6 * 1.01);
      EXPECT_GE(n.final_soc, -1e-9);
      EXPECT_LE(n.final_soc, 1.0 + 1e-9);
      if (n.died) {
        EXPECT_GT(n.death_time.value(), 0.0);
        EXPECT_LE(n.death_time.value(), r.sim_end.value() + 1e-6);
      }
    }
    EXPECT_LE(r.last_completion.value(), r.sim_end.value() + 1e-9);

    // Replay determinism holds with the fault plan in the loop too.
    PipelineSystem replay(std::move(copy));
    const RunResult r2 = replay.run();
    EXPECT_EQ(r.frames_completed, r2.frames_completed);
    EXPECT_EQ(r.frames_sent, r2.frames_sent);
    EXPECT_EQ(r.frames_lost, r2.frames_lost);
    EXPECT_EQ(r.migration_retries, r2.migration_retries);
    EXPECT_EQ(r.fault_injections, r2.fault_injections);
    EXPECT_DOUBLE_EQ(r.sim_end.value(), r2.sim_end.value());
    ASSERT_EQ(r.nodes.size(), r2.nodes.size());
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      EXPECT_EQ(r.nodes[i].died, r2.nodes[i].died);
      EXPECT_DOUBLE_EQ(r.nodes[i].charge_used.value(),
                       r2.nodes[i].charge_used.value());
      EXPECT_EQ(r.nodes[i].rotations, r2.nodes[i].rotations);
      EXPECT_EQ(r.nodes[i].migrated, r2.nodes[i].migrated);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL, 55ULL,
                                           66ULL, 77ULL, 88ULL));

}  // namespace
}  // namespace deslp::core
